package core

import (
	"fmt"
	"sort"

	"dmp/internal/cfg"
	"dmp/internal/isa"
	"dmp/internal/profile"
	"dmp/internal/verify"
)

// Result is the outcome of a selection run: the annotation sidecar to attach
// to the binary, plus accounting.
type Result struct {
	Annots map[int]*isa.DivergeInfo
	Stats  SelStats
}

// Select runs the paper's diverge-branch selection over every function of
// the program, using the given profile.
func Select(prog *isa.Program, prof *profile.Profile, p Params) (*Result, error) {
	res := &Result{Annots: map[int]*isa.DivergeInfo{}}
	for _, fn := range prog.Funcs {
		g, err := cfg.Build(prog, fn)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", fn.Name, err)
		}
		pdom := cfg.PostDominators(g)
		dom := cfg.Dominators(g)
		loops := cfg.NaturalLoops(g, dom)
		for _, brPC := range g.CondBranches() {
			if prof.BranchExec(brPC) < p.MinBranchExec {
				continue
			}
			if p.TwoD != nil {
				minRate := p.TwoDMinRate
				if minRate == 0 {
					minRate = 0.02
				}
				if !p.TwoD.PossiblyMispredicted(brPC, minRate) {
					res.Stats.Rejected2D++
					continue
				}
			}
			res.Stats.CandidatesConsidered++
			if l := loopBranchOf(g, loops, brPC); l != nil {
				if p.EnableLoops {
					selectLoop(res, g, prof, l, brPC, p)
				}
				continue
			}
			selectHammock(res, g, pdom, prof, brPC, p)
		}
	}
	if err := checkResult(prog, res); err != nil {
		return nil, err
	}
	return res, nil
}

// checkResult runs the static verifier's annotation-legality pass over a
// selection result before handing it to callers: an illegal annotation set
// is a selection bug and must never reach the simulator.
func checkResult(prog *isa.Program, res *Result) error {
	if err := verify.CheckAnnots(prog.WithAnnots(res.Annots), "select"); err != nil {
		return fmt.Errorf("core: selection produced an illegal annotation set: %w", err)
	}
	return nil
}

// loopBranchOf returns the innermost natural loop for which brPC is a loop
// exit branch with its other direction staying in the loop — the paper's
// loop CFG type (Figure 3d): one direction iterates, the other leaves.
func loopBranchOf(g *cfg.Graph, loops []*cfg.Loop, brPC int) *cfg.Loop {
	l := cfg.InnermostLoopWithExit(loops, brPC)
	if l == nil {
		return nil
	}
	blk := g.BlockAt(brPC)
	ntIn := blk.Succs[0] != g.ExitID && l.Contains(blk.Succs[0])
	tkIn := blk.Succs[1] != g.ExitID && l.Contains(blk.Succs[1])
	if ntIn != tkIn {
		return l
	}
	return nil
}

// selectLoop applies the Section 5.2 heuristics to a loop exit branch.
func selectLoop(res *Result, g *cfg.Graph, prof *profile.Profile, l *cfg.Loop, brPC int, p Params) {
	if l.NumInsts(g) > p.StaticLoopSize {
		res.Stats.RejectedByThreshold++
		return
	}
	ls := prof.LoopProfile(g, l)
	if ls.AvgTripInsts > p.DynamicLoopSize || ls.AvgIters > p.LoopIter {
		res.Stats.RejectedByThreshold++
		return
	}
	blk := g.BlockAt(brPC)
	// Successor order is [fallthrough, taken]; the exit direction is the one
	// leaving the loop.
	ntIn := blk.Succs[0] != g.ExitID && l.Contains(blk.Succs[0])
	tkIn := blk.Succs[1] != g.ExitID && l.Contains(blk.Succs[1])
	if ntIn == tkIn {
		return // not a two-way loop exit
	}
	res.Annots[brPC] = &isa.DivergeInfo{
		Loop:          true,
		LoopHead:      g.Blocks[l.Header].Start,
		LoopExitTaken: ntIn, // taken leaves when fallthrough stays in
	}
	res.Stats.Loop++
}

// selectHammock runs Alg-exact / Alg-freq plus the short-hammock and
// return-CFM extensions on a non-loop conditional branch.
func selectHammock(res *Result, g *cfg.Graph, pdom *cfg.DomTree, prof *profile.Profile, brPC int, p Params) {
	ipos := cfg.IPosDom(g, pdom, brPC)
	cw := p.CallWeight
	if cw == 0 {
		cw = cfg.DefaultCallWeight
	}
	limits := cfg.PathLimits{
		MaxInsts:    p.MaxInstr,
		MaxCondBrs:  p.MaxCbr,
		MinExecProb: p.MinExecProb,
		CallWeight:  cw,
	}
	tkSet, ntSet := cfg.BranchPaths(g, brPC, ipos, prof.EdgeProb, limits)
	tk, nt := side{tkSet, cw}, side{ntSet, cw}
	if len(tkSet.Paths) == 0 || len(ntSet.Paths) == 0 {
		return
	}

	exact := ipos >= 0 && tk.allMergedAt(ipos) && nt.allMergedAt(ipos)
	var cands []int
	switch {
	case exact:
		cands = []int{ipos}
	case p.EnableFreq:
		cands = cfg.CommonBlocks(tkSet, ntSet)
		if !p.DisableChainReduction {
			cands = reduceChains(tk, nt, cands)
		}
		if len(cands) > p.MaxCFM {
			cands = cands[:p.MaxCFM]
		}
	default:
		res.Stats.RejectedByThreshold++
		return
	}

	// Joint first-merge probabilities over the final candidate set
	// (footnote 3 semantics). Clamped to [0,1]: summing path probabilities
	// can drift an ulp above 1, which the ISA annotation validator rejects.
	tkFR := tk.firstReach(cands)
	ntFR := nt.firstReach(cands)
	mergeP := func(id int) float64 { return clamp01(tkFR[id] * ntFR[id]) }
	sort.SliceStable(cands, func(i, j int) bool { return mergeP(cands[i]) > mergeP(cands[j]) })

	takenProb := prof.TakenProb(brPC)

	// Short-hammock heuristic (3.4): always predicate, keep only the short
	// CFM.
	if p.EnableShort && len(cands) > 0 {
		c := cands[0]
		if tk.maxInsts(g, c) <= p.ShortMaxInsts && nt.maxInsts(g, c) <= p.ShortMaxInsts &&
			mergeP(c) >= p.ShortMinMergeProb &&
			prof.MispRate(brPC) >= p.ShortMinMispRate {
			res.Annots[brPC] = &isa.DivergeInfo{
				Short: true,
				CFMs:  []isa.CFM{{Kind: isa.CFMAddr, Addr: g.Blocks[c].Start, MergeProb: mergeP(c)}},
			}
			res.Stats.Short++
			bumpType(res, exact, tk, nt)
			return
		}
	}

	// Threshold filtering (heuristic mode).
	if !p.UseCostModel {
		kept := cands[:0]
		for _, c := range cands {
			if mergeP(c) >= p.MinMergeProb {
				kept = append(kept, c)
			}
		}
		cands = kept
	}

	// Return CFM (3.5): both sides leave through returns.
	retMerge := 0.0
	if p.EnableRetCFM && len(cands) == 0 {
		retMerge = clamp01(tk.retProb(g) * nt.retProb(g))
		if !p.UseCostModel && retMerge < p.MinMergeProb {
			retMerge = 0
		}
	}

	if len(cands) == 0 && retMerge == 0 {
		res.Stats.RejectedByThreshold++
		return
	}

	// Cost-benefit analysis (Section 4).
	if p.UseCostModel {
		ov := hammockOverhead(g, tk, nt, cands, mergeP, retMerge, takenProb, p)
		if dpredCost(ov, p) >= 0 {
			res.Stats.RejectedByCost++
			return
		}
	}

	annot := &isa.DivergeInfo{}
	for _, c := range cands {
		annot.CFMs = append(annot.CFMs, isa.CFM{
			Kind: isa.CFMAddr, Addr: g.Blocks[c].Start, MergeProb: mergeP(c),
		})
	}
	if len(cands) == 0 && retMerge > 0 {
		annot.CFMs = append(annot.CFMs, isa.CFM{Kind: isa.CFMReturn, MergeProb: retMerge})
		res.Stats.RetCFM++
	}
	res.Annots[brPC] = annot
	bumpType(res, exact, tk, nt)
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func bumpType(res *Result, exact bool, tk, nt side) {
	if !exact {
		res.Stats.Freq++
		return
	}
	if maxCondBrs(tk) == 0 && maxCondBrs(nt) == 0 {
		res.Stats.Simple++
	} else {
		res.Stats.Nested++
	}
}

func maxCondBrs(s side) int {
	m := 0
	for i := range s.set.Paths {
		if s.set.Paths[i].CondBrs > m {
			m = s.set.Paths[i].CondBrs
		}
	}
	return m
}

// reduceChains implements Section 3.3.1: when one CFM candidate lies on a
// path to another, only the one with the highest first-merge probability in
// the chain is kept. Candidates are grouped by path co-occurrence
// (union-find) and each group contributes its best member.
func reduceChains(tk, nt side, cands []int) []int {
	if len(cands) <= 1 {
		return cands
	}
	idx := make(map[int]int, len(cands))
	for i, c := range cands {
		idx[c] = i
	}
	parent := make([]int, len(cands))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	link := func(s side) {
		for i := range s.set.Paths {
			p := &s.set.Paths[i]
			prev := -1
			for _, b := range p.Blocks {
				if j, ok := idx[b]; ok {
					if prev >= 0 {
						union(prev, j)
					}
					prev = j
				}
			}
		}
	}
	link(tk)
	link(nt)

	// Per-group winner by joint first-merge probability within the group.
	groups := map[int][]int{}
	for i, c := range cands {
		root := find(i)
		groups[root] = append(groups[root], c)
	}
	var out []int
	for _, members := range groups {
		if len(members) == 1 {
			out = append(out, members[0])
			continue
		}
		tkFR := tk.firstReach(members)
		ntFR := nt.firstReach(members)
		best, bestP := members[0], -1.0
		for _, m := range members {
			if pm := tkFR[m] * ntFR[m]; pm > bestP {
				best, bestP = m, pm
			}
		}
		out = append(out, best)
	}
	sort.Ints(out)
	return out
}
