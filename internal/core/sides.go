package core

import "dmp/internal/cfg"

// side wraps one direction's enumerated path set with the per-CFM-candidate
// computations the selection algorithms and the cost model need.
type side struct {
	set *cfg.PathSet
	// cw is the call weight used in instruction accounting.
	cw int
}

// reach returns the probability that the direction ever reaches block id.
func (s side) reach(id int) float64 { return s.set.Reach[id] }

// instsBefore returns the instruction count on path p before the first
// occurrence of block id; if id is not on the path it returns the whole
// path's instruction count (those instructions are fetched regardless,
// matching the paper's edge-based estimate in Eq. 11). Calls are weighted
// by cw.
func instsBefore(g *cfg.Graph, p *cfg.Path, id, cw int) int {
	n := 0
	for i, b := range p.Blocks {
		if b == id {
			return n
		}
		// The final block of a merged path is the stop block whose
		// instructions are not counted.
		if p.End == cfg.EndMerged && i == len(p.Blocks)-1 {
			break
		}
		n += g.BlockWeight(b, cw)
	}
	return p.Insts
}

// expInsts is method 3 (edge-weighted): the expected number of instructions
// fetched on this side before merging at block id (or until the path ends).
func (s side) expInsts(g *cfg.Graph, id int) float64 {
	var sum, total float64
	for i := range s.set.Paths {
		p := &s.set.Paths[i]
		sum += p.Prob * float64(instsBefore(g, p, id, s.cw))
		total += p.Prob
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// maxInsts is method 2 (longest path): the largest instruction count on any
// enumerated path before merging at block id.
func (s side) maxInsts(g *cfg.Graph, id int) int {
	m := 0
	for i := range s.set.Paths {
		p := &s.set.Paths[i]
		if n := instsBefore(g, p, id, s.cw); n > m {
			m = n
		}
	}
	return m
}

// allMergedAt reports whether every enumerated path on this side reaches the
// block (the Alg-exact condition: reconvergence within the bounds on every
// path).
func (s side) allMergedAt(id int) bool {
	if len(s.set.Paths) == 0 || !s.set.Complete {
		return false
	}
	for i := range s.set.Paths {
		p := &s.set.Paths[i]
		if p.End != cfg.EndMerged || p.Blocks[len(p.Blocks)-1] != id {
			if p.FirstIndexOf(id) < 0 {
				return false
			}
		}
	}
	return true
}

// firstReach returns, for each block in cands, the probability that it is
// the first member of cands reached on this side (footnote 3's first-merge
// probability).
func (s side) firstReach(cands []int) map[int]float64 {
	in := make(map[int]bool, len(cands))
	for _, c := range cands {
		in[c] = true
	}
	out := make(map[int]float64, len(cands))
	for i := range s.set.Paths {
		p := &s.set.Paths[i]
		for _, b := range p.Blocks {
			if in[b] {
				out[b] += p.Prob
				break
			}
		}
	}
	return out
}

// retProb returns the probability that this side leaves the function through
// a return instruction (for return-CFM detection).
func (s side) retProb(g *cfg.Graph) float64 {
	var sum float64
	for i := range s.set.Paths {
		p := &s.set.Paths[i]
		if p.End != cfg.EndExit || len(p.Blocks) == 0 {
			continue
		}
		if g.Blocks[p.Blocks[len(p.Blocks)-1]].HasReturn {
			sum += p.Prob
		}
	}
	return sum
}

// maxPathInsts returns the largest instruction count over all paths.
func (s side) maxPathInsts() int {
	m := 0
	for i := range s.set.Paths {
		if s.set.Paths[i].Insts > m {
			m = s.set.Paths[i].Insts
		}
	}
	return m
}

// isSingleBlockTo reports whether this side consists of exactly one path of
// at most one block that merges at id (the If-else baseline's "no
// intervening control flow" condition; an empty arm also qualifies).
func (s side) isSingleBlockTo(id int) bool {
	if len(s.set.Paths) != 1 {
		return false
	}
	p := &s.set.Paths[0]
	if p.End != cfg.EndMerged || p.Blocks[len(p.Blocks)-1] != id {
		return false
	}
	return len(p.Blocks) <= 2 && p.CondBrs == 0
}
