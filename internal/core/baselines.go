package core

import (
	"fmt"
	"math/rand"

	"dmp/internal/cfg"
	"dmp/internal/isa"
	"dmp/internal/profile"
)

// Baseline enumerates the simple selection algorithms of Section 7.2.
type Baseline int

const (
	// EveryBranch selects all conditional branches (Every-br).
	EveryBranch Baseline = iota
	// Random50 selects 50% of all branches at random.
	Random50
	// HighBP5 selects branches with > 5% profiled misprediction rate.
	HighBP5
	// Immediate selects all branches that have an immediate post-dominator.
	Immediate
	// IfElse selects only simple if / if-else branches with no intervening
	// control flow.
	IfElse
)

// String names the baseline.
func (b Baseline) String() string {
	switch b {
	case EveryBranch:
		return "Every-br"
	case Random50:
		return "Random-50"
	case HighBP5:
		return "High-BP-5"
	case Immediate:
		return "Immediate"
	case IfElse:
		return "If-else"
	}
	return fmt.Sprintf("baseline(%d)", int(b))
}

// SelectBaseline runs one of the simple algorithms. For every selected
// branch the IPOSDOM, when it exists, is the single CFM point (footnote 10);
// branches without one get a CFM-less annotation (dual-path until resolve).
func SelectBaseline(prog *isa.Program, prof *profile.Profile, b Baseline, seed int64) (*Result, error) {
	res := &Result{Annots: map[int]*isa.DivergeInfo{}}
	rng := rand.New(rand.NewSource(seed))
	for _, fn := range prog.Funcs {
		g, err := cfg.Build(prog, fn)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", fn.Name, err)
		}
		pdom := cfg.PostDominators(g)
		for _, brPC := range g.CondBranches() {
			res.Stats.CandidatesConsidered++
			ipos := cfg.IPosDom(g, pdom, brPC)
			selected := false
			switch b {
			case EveryBranch:
				selected = true
			case Random50:
				selected = rng.Intn(2) == 0
			case HighBP5:
				selected = prof.BranchExec(brPC) > 0 && prof.MispRate(brPC) > 0.05
			case Immediate:
				selected = ipos >= 0
			case IfElse:
				selected = isSimpleIfElse(g, brPC, ipos)
			}
			if !selected {
				continue
			}
			annot := &isa.DivergeInfo{}
			if ipos >= 0 {
				annot.CFMs = []isa.CFM{{Kind: isa.CFMAddr, Addr: g.Blocks[ipos].Start, MergeProb: 1}}
				res.Stats.Simple++
			} else {
				res.Stats.Freq++ // dual-path, no CFM
			}
			res.Annots[brPC] = annot
		}
	}
	if err := checkResult(prog, res); err != nil {
		return nil, err
	}
	return res, nil
}

// isSimpleIfElse reports whether the branch is a simple hammock: both arms
// are at most one straight-line block that falls into the IPOSDOM.
func isSimpleIfElse(g *cfg.Graph, brPC, ipos int) bool {
	if ipos < 0 {
		return false
	}
	limits := cfg.PathLimits{MaxInsts: 1 << 20, MaxCondBrs: 0, MinExecProb: 0, CallWeight: -1}
	uniform := func(g *cfg.Graph, from, to int) float64 {
		n := len(g.Succs(from))
		if n == 0 {
			return 0
		}
		return 1 / float64(n)
	}
	tkSet, ntSet := cfg.BranchPaths(g, brPC, ipos, uniform, limits)
	tk, nt := side{tkSet, 1}, side{ntSet, 1}
	return tk.isSingleBlockTo(ipos) && nt.isSingleBlockTo(ipos)
}
