package core

// Boundary tests for the Section 4 cost model: uselessInsts and
// hammockOverhead at the takenProb extremes, an empty CFM candidate list,
// and merge-probability clamping at both edges.

import (
	"math"
	"testing"

	"dmp/internal/cfg"
	"dmp/internal/isa"
)

// hammockSides builds the canonical input-driven hammock, profiles it, and
// returns the CFG, both path sets wrapped as sides, the merge block id, and
// the parameters used. Arm lengths are asymmetric (taken arm 3 ALUs,
// not-taken arm 5) so the two sides are distinguishable in the accounting.
func hammockSides(t *testing.T, p Params) (*cfg.Graph, side, side, int) {
	t.Helper()
	prog, brPC, _ := asymmetricHammock(t)
	prof := collect(t, prog, randBits(7, 400))
	g, err := cfg.Build(prog, prog.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	pdom := cfg.PostDominators(g)
	ipos := cfg.IPosDom(g, pdom, brPC)
	if ipos < 0 {
		t.Fatalf("hammock branch %d has no post-dominator merge block", brPC)
	}
	cw := p.CallWeight
	if cw == 0 {
		cw = cfg.DefaultCallWeight
	}
	limits := cfg.PathLimits{
		MaxInsts:    p.MaxInstr,
		MaxCondBrs:  p.MaxCbr,
		MinExecProb: p.MinExecProb,
		CallWeight:  cw,
	}
	tkSet, ntSet := cfg.BranchPaths(g, brPC, ipos, prof.EdgeProb, limits)
	tk, nt := side{tkSet, cw}, side{ntSet, cw}
	if len(tkSet.Paths) == 0 || len(ntSet.Paths) == 0 {
		t.Fatalf("path enumeration found no paths: taken=%d notTaken=%d", len(tkSet.Paths), len(ntSet.Paths))
	}
	return g, tk, nt, ipos
}

func asymmetricHammock(t *testing.T) (prog *isa.Program, brPC, mergePC int) {
	t.Helper()
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("loop")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.In(2)
		brPC = b.Beqz(2, "else")
		for i := 0; i < 3; i++ {
			b.ALUI(isa.OpAdd, 3, 3, 1)
		}
		b.Jmp("merge")
		b.Label("else")
		for i := 0; i < 5; i++ {
			b.ALUI(isa.OpSub, 3, 3, 1)
		}
		b.Label("merge")
		mergePC = b.PC()
		b.ALUI(isa.OpAdd, 4, 4, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Out(3)
		b.Halt()
	})
	return p, brPC, mergePC
}

func TestUselessInstsTakenProbExtremes(t *testing.T) {
	for _, method := range []OverheadMethod{LongestPath, EdgeWeighted} {
		p := CostParams(method)
		g, tk, nt, merge := hammockSides(t, p)
		nT := sideInsts(g, tk, merge, p)
		nNT := sideInsts(g, nt, merge, p)
		if nT <= 0 || nNT <= 0 {
			t.Fatalf("method %v: degenerate side sizes nT=%v nNT=%v", method, nT, nNT)
		}
		if nT == nNT {
			t.Fatalf("method %v: arms should be asymmetric, both %v", method, nT)
		}
		// takenProb 1: every fetched not-taken instruction is useless,
		// every taken one useful — and symmetrically for takenProb 0.
		if got := uselessInsts(g, tk, nt, merge, 1, p); math.Abs(got-nNT) > 1e-9 {
			t.Errorf("method %v: uselessInsts(takenProb=1) = %v, want nNT %v", method, got, nNT)
		}
		if got := uselessInsts(g, tk, nt, merge, 0, p); math.Abs(got-nT) > 1e-9 {
			t.Errorf("method %v: uselessInsts(takenProb=0) = %v, want nT %v", method, got, nT)
		}
		// Interior probabilities stay between the extremes and non-negative.
		mid := uselessInsts(g, tk, nt, merge, 0.5, p)
		if mid < 0 || mid > nT+nNT {
			t.Errorf("method %v: uselessInsts(0.5) = %v out of [0, %v]", method, mid, nT+nNT)
		}
	}
}

func TestHammockOverheadEmptyCandidates(t *testing.T) {
	p := CostParams(EdgeWeighted)
	g, tk, nt, _ := hammockSides(t, p)
	// No CFM candidates and no return CFM: nothing ever merges, so the
	// overhead degenerates to the non-merging penalty of half the branch
	// resolution time (Eq. 16 with pm = 0).
	got := hammockOverhead(g, tk, nt, nil, func(int) float64 {
		t.Fatal("mergeP must not be consulted for an empty candidate list")
		return 0
	}, 0, 0.5, p)
	want := p.MispPenalty / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("hammockOverhead(no cands) = %v, want resolution-half %v", got, want)
	}
}

func TestHammockOverheadMergeProbClamping(t *testing.T) {
	p := CostParams(EdgeWeighted)
	g, tk, nt, merge := hammockSides(t, p)

	// Certain merge (pm = 1): the (1-pm) resolution penalty vanishes and
	// the overhead is exactly the useless instructions over fetch width.
	useless := uselessInsts(g, tk, nt, merge, 0.5, p)
	got := hammockOverhead(g, tk, nt, []int{merge}, func(int) float64 { return 1 }, 0, 0.5, p)
	if want := useless / p.FetchWidth; math.Abs(got-want) > 1e-9 {
		t.Errorf("overhead(pm=1) = %v, want %v", got, want)
	}

	// Aggregate merge probability above 1 (two candidates at 0.7 each, plus
	// a return CFM) must clamp to 1 rather than produce a negative
	// resolution term.
	overP := hammockOverhead(g, tk, nt, []int{merge, merge}, func(int) float64 { return 0.7 }, 0.5, 0.5, p)
	sum := useless*0.7*2 + uselessInsts(g, tk, nt, -1, 0.5, p)*0.5
	if want := sum / p.FetchWidth; math.Abs(overP-want) > 1e-9 {
		t.Errorf("overhead(pm>1) = %v, want clamped %v", overP, want)
	}

	// Zero merge probability: only the resolution penalty remains.
	got0 := hammockOverhead(g, tk, nt, []int{merge}, func(int) float64 { return 0 }, 0, 0.5, p)
	if want := p.MispPenalty / 2; math.Abs(got0-want) > 1e-9 {
		t.Errorf("overhead(pm=0) = %v, want %v", got0, want)
	}
}

func TestClamp01Edges(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {-1e-15, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1 + 1e-15, 1}, {2, 1},
	}
	for _, c := range cases {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDpredCostSign(t *testing.T) {
	p := CostParams(EdgeWeighted)
	// Zero overhead with any confidence accuracy is pure win: the cost is
	// the full negative misprediction-penalty expectation.
	if got, want := dpredCost(0, p), -p.MispPenalty*p.AccConf; math.Abs(got-want) > 1e-9 {
		t.Errorf("dpredCost(0) = %v, want %v", got, want)
	}
	// Overhead equal to the penalty can never be profitable.
	if got := dpredCost(p.MispPenalty, p); got < 0 {
		t.Errorf("dpredCost(penalty) = %v, want >= 0", got)
	}
}
