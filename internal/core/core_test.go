package core

import (
	"math/rand"
	"testing"

	"dmp/internal/isa"
	"dmp/internal/profile"
)

func mustLink(t *testing.T, build func(b *isa.Builder)) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	build(b)
	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func collect(t *testing.T, p *isa.Program, input []int64) *profile.Profile {
	t.Helper()
	prof, err := profile.Collect(p, input, profile.Options{})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return prof
}

func randBits(seed int64, n int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(rng.Intn(2))
	}
	return in
}

// inputLoopHammock builds a program looping over inputs with a hammock of
// the given arm length branching on the input value.
func inputLoopHammock(t *testing.T, armLen int) (*isa.Program, int, int) {
	var brPC, mergePC int
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("loop")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.In(2)
		brPC = b.Beqz(2, "else")
		for i := 0; i < armLen; i++ {
			b.ALUI(isa.OpAdd, 3, 3, 1)
		}
		b.Jmp("merge")
		b.Label("else")
		for i := 0; i < armLen; i++ {
			b.ALUI(isa.OpSub, 3, 3, 1)
		}
		b.Label("merge")
		mergePC = b.PC()
		b.ALUI(isa.OpAdd, 4, 4, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Out(3)
		b.Halt()
	})
	return p, brPC, mergePC
}

func TestSelectSimpleHammock(t *testing.T) {
	p, brPC, mergePC := inputLoopHammock(t, 3)
	prof := collect(t, p, randBits(1, 500))
	params := HeuristicParams()
	params.EnableShort = false // keep it a plain simple hammock
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	annot := res.Annots[brPC]
	if annot == nil {
		t.Fatalf("hammock branch %d not selected; annots=%v", brPC, res.Annots)
	}
	if len(annot.CFMs) != 1 || annot.CFMs[0].Addr != mergePC {
		t.Errorf("CFMs = %v, want single CFM at %d", annot.CFMs, mergePC)
	}
	if annot.CFMs[0].MergeProb < 0.99 {
		t.Errorf("exact hammock merge prob = %v, want 1", annot.CFMs[0].MergeProb)
	}
	if res.Stats.Simple != 1 {
		t.Errorf("stats = %+v, want one simple hammock", res.Stats)
	}
}

func TestShortHammockHeuristic(t *testing.T) {
	p, brPC, _ := inputLoopHammock(t, 3)

	// Random input: branch mispredicts heavily -> short hammock selected.
	prof := collect(t, p, randBits(2, 800))
	res, err := Select(p, prof, HeuristicParams())
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Annots[brPC]; a == nil || !a.Short {
		t.Errorf("mispredicted short hammock not marked Short: %+v", a)
	}
	if res.Stats.Short != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}

	// Biased input: branch predictable -> not Short (misp rate below 5%).
	biased := make([]int64, 800)
	for i := range biased {
		biased[i] = 1
	}
	prof2 := collect(t, p, biased)
	res2, err := Select(p, prof2, HeuristicParams())
	if err != nil {
		t.Fatal(err)
	}
	if a := res2.Annots[brPC]; a != nil && a.Short {
		t.Error("predictable hammock marked Short")
	}
}

func TestMaxInstrRejectsLargeHammock(t *testing.T) {
	p, brPC, _ := inputLoopHammock(t, 80) // 80-instruction arms
	prof := collect(t, p, randBits(3, 300))
	params := HeuristicParams() // MaxInstr = 50
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Annots[brPC] != nil {
		t.Error("oversized hammock selected despite MAX_INSTR")
	}
	// With a larger bound it is selected.
	params.MaxInstr = 200
	params.MaxCbr = 20
	res2, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Annots[brPC] == nil {
		t.Error("hammock not selected with MAX_INSTR=200")
	}
}

func TestSelectNestedHammock(t *testing.T) {
	var outerBr int
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("loop")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.In(2)
		b.In(3)
		outerBr = b.Beqz(2, "else")
		b.Beqz(3, "inner_else")
		b.ALUI(isa.OpAdd, 4, 4, 1)
		b.Jmp("inner_merge")
		b.Label("inner_else")
		b.ALUI(isa.OpSub, 4, 4, 1)
		b.Label("inner_merge")
		b.Jmp("merge")
		b.Label("else")
		b.ALUI(isa.OpSub, 4, 4, 2)
		b.Label("merge")
		b.ALUI(isa.OpAdd, 5, 5, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Out(4)
		b.Halt()
	})
	prof := collect(t, p, randBits(4, 600))
	params := HeuristicParams()
	params.EnableShort = false
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Annots[outerBr] == nil {
		t.Fatal("nested hammock outer branch not selected")
	}
	if res.Stats.Nested == 0 {
		t.Errorf("stats = %+v, want a nested hammock", res.Stats)
	}
}

// freqHammockProg builds a frequently-hammock: the taken side usually merges
// but can escape to a separate exit (controlled by a second input bit).
func freqHammockProg(t *testing.T) (*isa.Program, int, int) {
	var brPC, mergePC int
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("loop")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.In(2)
		b.In(3)
		brPC = b.Beqz(2, "right")
		// Left side: usually falls to merge, rarely escapes.
		b.Bnez(3, "escape")
		b.ALUI(isa.OpAdd, 4, 4, 1)
		b.Jmp("merge")
		b.Label("escape")
		// A long cleanup (beyond MAX_INSTR) so the escape path never merges
		// within the analysis bounds: the hammock is only a hammock on the
		// frequently executed paths.
		for i := 0; i < 60; i++ {
			b.ALUI(isa.OpAdd, 5, 5, 1)
		}
		b.Jmp("loop")
		b.Label("right")
		b.ALUI(isa.OpSub, 4, 4, 1)
		b.Label("merge")
		mergePC = b.PC()
		b.ALUI(isa.OpAdd, 6, 6, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Out(4)
		b.Halt()
	})
	return p, brPC, mergePC
}

// freqInputs: first bit random (the diverge branch), second bit mostly 0
// (rare escape).
func freqInputs(seed int64, n int, escapeProb float64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int64, 2*n)
	for i := 0; i < n; i++ {
		in[2*i] = int64(rng.Intn(2))
		if rng.Float64() < escapeProb {
			in[2*i+1] = 1
		}
	}
	return in
}

func TestSelectFrequentlyHammock(t *testing.T) {
	p, brPC, mergePC := freqHammockProg(t)
	prof := collect(t, p, freqInputs(5, 600, 0.1))
	params := HeuristicParams()
	params.EnableShort = false
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	annot := res.Annots[brPC]
	if annot == nil {
		t.Fatal("frequently-hammock branch not selected")
	}
	if res.Stats.Freq == 0 {
		t.Errorf("stats = %+v, want a frequently-hammock", res.Stats)
	}
	found := false
	for _, c := range annot.CFMs {
		if c.Addr == mergePC {
			found = true
			if c.MergeProb > 0.999 || c.MergeProb < 0.5 {
				t.Errorf("approximate merge prob = %v, want in (0.5, 1)", c.MergeProb)
			}
		}
	}
	if !found {
		t.Errorf("CFM at merge %d not found: %v", mergePC, annot.CFMs)
	}

	// With a very high MIN_MERGE_PROB the candidate is rejected.
	params.MinMergeProb = 0.99
	params.EnableRetCFM = false
	res2, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Annots[brPC] != nil {
		t.Error("selected despite MIN_MERGE_PROB=0.99")
	}
}

func TestChainReduction(t *testing.T) {
	// Figure 4 shape: two CFM candidates where one is on every path to the
	// other; only one may be selected.
	var brPC int
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("loop")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.In(2)
		b.In(3)
		brPC = b.Beqz(2, "B")
		// Taken side (C then D).
		b.Label("C")
		b.ALUI(isa.OpAdd, 4, 4, 1)
		b.Label("D")
		b.ALUI(isa.OpAdd, 5, 5, 1)
		b.Jmp("loop")
		b.Label("B")
		b.Bnez(3, "C") // usually joins at C, sometimes at D directly
		b.Jmp("D")
		b.Label("done")
		b.Out(4)
		b.Halt()
	})
	// Hmm: taken side of brPC goes to B?; direction semantics: Beqz taken ->
	// label "B"; fallthrough is C/D chain.
	prof := collect(t, p, freqInputs(6, 500, 0.5))
	params := HeuristicParams()
	params.EnableShort = false
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	annot := res.Annots[brPC]
	if annot == nil {
		t.Fatal("chain branch not selected")
	}
	if len(annot.CFMs) != 1 {
		t.Errorf("chain not reduced: CFMs = %v", annot.CFMs)
	}
}

func TestReturnCFMSelection(t *testing.T) {
	var brPC int
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("loop")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.Call("f")
		b.Jmp("loop")
		b.Label("done")
		b.Out(3)
		b.Halt()
		b.Func("f")
		b.In(2)
		brPC = b.Beqz(2, "f.else")
		b.ALUI(isa.OpAdd, 3, 3, 1)
		b.Ret()
		b.Label("f.else")
		b.ALUI(isa.OpSub, 3, 3, 1)
		b.Ret()
	})
	prof := collect(t, p, randBits(7, 500))
	params := HeuristicParams()
	params.EnableShort = false
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	annot := res.Annots[brPC]
	if annot == nil {
		t.Fatal("return-merged branch not selected")
	}
	if len(annot.CFMs) != 1 || annot.CFMs[0].Kind != isa.CFMReturn {
		t.Errorf("CFMs = %v, want a return CFM", annot.CFMs)
	}
	if res.Stats.RetCFM != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}

	// Without the mechanism the branch is not selected.
	params.EnableRetCFM = false
	res2, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Annots[brPC] != nil {
		t.Error("selected without return-CFM support")
	}
}

// innerLoopProg builds an outer input loop with an inner counted loop whose
// trip count comes from the input.
func innerLoopProg(t *testing.T, bodyExtra int) (*isa.Program, int) {
	var exitBr int
	p := mustLink(t, func(b *isa.Builder) {
		b.Func("main")
		b.Label("outer")
		b.InAvail(1)
		b.Beqz(1, "done")
		b.In(2)
		b.Label("inner")
		exitBr = b.Beqz(2, "post")
		b.ALUI(isa.OpSub, 2, 2, 1)
		for i := 0; i < bodyExtra; i++ {
			b.ALUI(isa.OpAdd, 3, 3, 1)
		}
		b.Jmp("inner")
		b.Label("post")
		b.ALUI(isa.OpAdd, 4, 4, 1)
		b.Jmp("outer")
		b.Label("done")
		b.Out(3)
		b.Halt()
	})
	return p, exitBr
}

func loopInputs(seed int64, n, maxIter int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(rng.Intn(maxIter) + 1)
	}
	return in
}

func TestSelectDivergeLoop(t *testing.T) {
	p, exitBr := innerLoopProg(t, 2)
	prof := collect(t, p, loopInputs(8, 300, 5))
	res, err := Select(p, prof, HeuristicParams())
	if err != nil {
		t.Fatal(err)
	}
	annot := res.Annots[exitBr]
	if annot == nil || !annot.Loop {
		t.Fatalf("loop exit branch not selected as diverge loop: %+v", annot)
	}
	if !annot.LoopExitTaken {
		t.Error("LoopExitTaken wrong: beqz to post is the taken exit")
	}
	if res.Stats.Loop != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}

	// Disabled loops: not selected.
	params := HeuristicParams()
	params.EnableLoops = false
	res2, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Annots[exitBr] != nil {
		t.Error("loop selected with EnableLoops=false")
	}
}

func TestLoopHeuristicRejections(t *testing.T) {
	// Big static body: rejected by STATIC_LOOP_SIZE.
	pBig, exitBig := innerLoopProg(t, 40)
	profBig := collect(t, pBig, loopInputs(9, 200, 5))
	res, err := Select(pBig, profBig, HeuristicParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Annots[exitBig] != nil {
		t.Error("oversized loop body selected")
	}

	// High iteration count: rejected by LOOP_ITER.
	pIter, exitIter := innerLoopProg(t, 2)
	profIter := collect(t, pIter, loopInputs(10, 100, 60))
	res2, err := Select(pIter, profIter, HeuristicParams())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Annots[exitIter] != nil {
		t.Error("high-iteration loop selected")
	}
}

func TestCostModelSelectsProfitable(t *testing.T) {
	p, brPC, _ := inputLoopHammock(t, 3)
	prof := collect(t, p, randBits(11, 600))
	for _, m := range []OverheadMethod{LongestPath, EdgeWeighted} {
		params := CostParams(m)
		params.EnableShort = false
		res, err := Select(p, prof, params)
		if err != nil {
			t.Fatal(err)
		}
		if res.Annots[brPC] == nil {
			t.Errorf("method %d: profitable hammock rejected by cost model", m)
		}
	}
}

func TestCostModelRejectsUnprofitable(t *testing.T) {
	// Arms of 140 instructions: useless ~140, overhead 140/8 = 17.5;
	// cost = 17.5*0.6 + (17.5-25)*0.4 = 10.5 - 3 = +7.5 -> rejected.
	p, brPC, _ := inputLoopHammock(t, 140)
	prof := collect(t, p, randBits(12, 300))
	params := CostParams(EdgeWeighted)
	params.EnableShort = false
	res, err := Select(p, prof, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Annots[brPC] != nil {
		t.Error("unprofitable large hammock accepted by cost model")
	}
	if res.Stats.RejectedByCost == 0 {
		t.Errorf("stats = %+v, want a cost rejection", res.Stats)
	}
}

func TestDpredCostEquation(t *testing.T) {
	p := HeuristicParams()
	// Zero overhead: cost = -penalty*AccConf < 0.
	if got := dpredCost(0, p); got != -25*0.4 {
		t.Errorf("dpredCost(0) = %v", got)
	}
	// Overhead equal to penalty: cost = penalty*(1-AccConf) > 0.
	if got := dpredCost(25, p); got != 25*0.6 {
		t.Errorf("dpredCost(25) = %v", got)
	}
	// Break-even: overhead = penalty*AccConf.
	if got := dpredCost(10, p); got != 10*0.6+(10-25)*0.4 {
		t.Errorf("dpredCost(10) = %v", got)
	}
}

func TestBaselines(t *testing.T) {
	p, brPC, _ := inputLoopHammock(t, 3)
	prof := collect(t, p, randBits(13, 600))

	every, err := SelectBaseline(p, prof, EveryBranch, 1)
	if err != nil {
		t.Fatal(err)
	}
	imm, err := SelectBaseline(p, prof, Immediate, 1)
	if err != nil {
		t.Fatal(err)
	}
	ifelse, err := SelectBaseline(p, prof, IfElse, 1)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := SelectBaseline(p, prof, Random50, 42)
	if err != nil {
		t.Fatal(err)
	}
	high, err := SelectBaseline(p, prof, HighBP5, 1)
	if err != nil {
		t.Fatal(err)
	}

	if len(every.Annots) < len(imm.Annots) || len(imm.Annots) < len(ifelse.Annots) {
		t.Errorf("ordering violated: every=%d imm=%d ifelse=%d",
			len(every.Annots), len(imm.Annots), len(ifelse.Annots))
	}
	if len(every.Annots) == 0 {
		t.Fatal("Every-br selected nothing")
	}
	if len(rnd.Annots) >= len(every.Annots) {
		t.Errorf("Random-50 = %d, want < Every-br %d", len(rnd.Annots), len(every.Annots))
	}
	// The random hammock branch mispredicts heavily: High-BP-5 includes it.
	if high.Annots[brPC] == nil {
		t.Error("High-BP-5 missed the mispredicted branch")
	}
	// If-else finds the simple hammock.
	if ifelse.Annots[brPC] == nil {
		t.Error("If-else missed the simple hammock")
	}
	// Baseline names.
	for b, want := range map[Baseline]string{
		EveryBranch: "Every-br", Random50: "Random-50", HighBP5: "High-BP-5",
		Immediate: "Immediate", IfElse: "If-else",
	} {
		if b.String() != want {
			t.Errorf("String(%d) = %q", b, b.String())
		}
	}
}

func TestSelectedAnnotationsValidate(t *testing.T) {
	p, _, _ := inputLoopHammock(t, 3)
	prof := collect(t, p, randBits(14, 500))
	res, err := Select(p, prof, HeuristicParams())
	if err != nil {
		t.Fatal(err)
	}
	q := p.WithAnnots(res.Annots)
	if err := q.Validate(); err != nil {
		t.Errorf("selected annotations do not validate: %v", err)
	}
}

func TestSelStatsSelected(t *testing.T) {
	s := SelStats{Simple: 1, Nested: 2, Freq: 3, Loop: 4}
	if s.Selected() != 10 {
		t.Errorf("Selected = %d", s.Selected())
	}
}
