package core

import (
	"testing"

	"dmp/internal/profile"
)

// TestTwoDFilterExcludesEasyBranches: with the 2D filter, branches that are
// easy to predict in every slice must be excluded while hard branches stay.
func TestTwoDFilterExcludesEasyBranches(t *testing.T) {
	p, brPC, _ := inputLoopHammock(t, 3)

	// A biased input: the hammock branch is ~12% taken — mispredicted
	// enough to be selected normally, but we compare against a steadier one.
	input := make([]int64, 4000)
	for i := range input {
		if i%2 == 0 {
			input[i] = int64(i % 5 & 1) // weak pattern
		} else {
			input[i] = 1
		}
	}
	prof, sp, err := profile.Collect2D(p, input, profile.TwoDOptions{SliceLen: 512})
	if err != nil {
		t.Fatal(err)
	}

	plain := HeuristicParams()
	resPlain, err := Select(p, prof, plain)
	if err != nil {
		t.Fatal(err)
	}

	filtered := plain
	filtered.TwoD = sp
	// An absurdly high floor: every branch is "easy", so nothing survives.
	filtered.TwoDMinRate = 0.99
	resFiltered, err := Select(p, prof, filtered)
	if err != nil {
		t.Fatal(err)
	}
	if len(resFiltered.Annots) != 0 {
		t.Errorf("99%% floor left %d annotations", len(resFiltered.Annots))
	}
	if resFiltered.Stats.Rejected2D == 0 {
		t.Error("no 2D rejections recorded")
	}

	// With the default floor, hard branches survive.
	filtered.TwoDMinRate = 0
	resDefault, err := Select(p, prof, filtered)
	if err != nil {
		t.Fatal(err)
	}
	if len(resDefault.Annots) > len(resPlain.Annots) {
		t.Errorf("2D filter grew the selection: %d > %d", len(resDefault.Annots), len(resPlain.Annots))
	}
	if resDefault.Annots[brPC] == nil && resPlain.Annots[brPC] != nil {
		// The main hammock is mispredicted; it must survive the default
		// filter whenever the unfiltered selection keeps it.
		t.Error("2D filter dropped the hard hammock branch")
	}
}
