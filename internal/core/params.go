// Package core implements the paper's contribution: profile-driven compiler
// algorithms that select diverge branches and control-flow merge (CFM)
// points for dynamic predication in a diverge-merge processor.
//
// It provides:
//
//   - Alg-exact (Section 3.2): simple/nested hammocks with exact CFM points
//     (immediate post-dominators);
//   - Alg-freq (Section 3.3): frequently-hammocks with approximate CFM
//     points from edge-profile-driven path enumeration, including CFM-chain
//     reduction (3.3.1);
//   - the short-hammock always-predicate heuristic (3.4);
//   - return CFM points (3.5);
//   - diverge loop branch heuristics (5.2);
//   - the analytical cost-benefit model (Section 4), with overhead
//     estimation by longest path (method 2) or edge-weighted average
//     (method 3);
//   - the five simple baseline selection algorithms of Section 7.2.
package core

import "dmp/internal/profile"

// OverheadMethod selects how N(dpred_insts) is estimated (Section 4.1.1).
type OverheadMethod int

const (
	// LongestPath is method 2: the longest possible path to the CFM.
	LongestPath OverheadMethod = 2
	// EdgeWeighted is method 3: the edge-profile-weighted average.
	EdgeWeighted OverheadMethod = 3
)

// Params controls diverge-branch selection.
type Params struct {
	// MaxInstr is MAX_INSTR: the per-path instruction bound.
	MaxInstr int
	// MaxCbr is MAX_CBR: the per-path conditional branch bound
	// (the paper uses MAX_INSTR/10).
	MaxCbr int
	// MinExecProb is MIN_EXEC_PROB: the edge-frequency floor followed
	// during path enumeration (0.001).
	MinExecProb float64
	// MinMergeProb is MIN_MERGE_PROB: the joint merge-probability floor for
	// approximate CFM points (heuristic mode).
	MinMergeProb float64
	// MaxCFM is the number of CFM points the ISA supports (3).
	MaxCFM int

	// EnableFreq enables Alg-freq (frequently-hammocks). Alg-exact alone is
	// the paper's "exact" configuration.
	EnableFreq bool
	// EnableShort enables the short-hammock always-predicate heuristic.
	EnableShort bool
	// ShortMaxInsts, ShortMinMergeProb, ShortMinMispRate are the 3.4
	// thresholds (10 instructions, 95% merge, 5% misprediction).
	ShortMaxInsts     int
	ShortMinMergeProb float64
	ShortMinMispRate  float64
	// EnableRetCFM enables return CFM points.
	EnableRetCFM bool
	// EnableLoops enables diverge loop branches.
	EnableLoops bool

	// Loop heuristics (Section 5.2).
	StaticLoopSize  int     // 30
	DynamicLoopSize float64 // 80
	LoopIter        float64 // 15

	// UseCostModel switches candidate filtering from the threshold
	// heuristics to the Section 4 cost-benefit analysis.
	UseCostModel bool
	// Method is the overhead-estimation method (2 or 3).
	Method OverheadMethod
	// AccConf is the assumed confidence-estimator accuracy (0.40).
	AccConf float64
	// MispPenalty is the machine misprediction penalty in cycles (25).
	MispPenalty float64
	// FetchWidth is the machine fetch width (8).
	FetchWidth float64

	// MinBranchExec skips branches executed fewer times during profiling
	// (engineering floor; the paper iterates over executed branches).
	MinBranchExec uint64
	// CallWeight is the instruction weight of a call in path-length
	// accounting (a call stands for its callee's fetched body). 0 means the
	// cfg package default.
	CallWeight int
	// DisableChainReduction turns off Section 3.3.1's CFM-chain reduction
	// (ablation only; the paper always applies it).
	DisableChainReduction bool

	// TwoD, when set, enables the 2D-profiling extension (the paper's
	// Section 8.3 future-work item): branches that never show a meaningful
	// per-slice misprediction rate are excluded from selection, shrinking
	// the static annotation footprint without losing coverage.
	TwoD *profile.SliceProfile
	// TwoDMinRate is the per-slice misprediction-rate floor a branch must
	// reach in at least one slice to stay eligible (default 0.02).
	TwoDMinRate float64
}

// HeuristicParams returns the best-performing threshold configuration the
// paper reports (Section 7.1.1): MAX_INSTR=50, MAX_CBR=5,
// MIN_MERGE_PROB=1%, with all optimizations enabled.
func HeuristicParams() Params {
	return Params{
		MaxInstr:          50,
		MaxCbr:            5,
		MinExecProb:       0.001,
		MinMergeProb:      0.01,
		MaxCFM:            3,
		EnableFreq:        true,
		EnableShort:       true,
		ShortMaxInsts:     10,
		ShortMinMergeProb: 0.95,
		ShortMinMispRate:  0.05,
		EnableRetCFM:      true,
		EnableLoops:       true,
		StaticLoopSize:    30,
		DynamicLoopSize:   80,
		LoopIter:          15,
		AccConf:           0.40,
		MispPenalty:       25,
		FetchWidth:        8,
		MinBranchExec:     16,
	}
}

// CostParams returns the cost-benefit-model configuration (footnote 4:
// MAX_INSTR=200, MAX_CBR=20 define the analysis scope; no merge-probability
// threshold).
func CostParams(method OverheadMethod) Params {
	p := HeuristicParams()
	p.MaxInstr = 200
	p.MaxCbr = 20
	p.MinMergeProb = 0
	p.UseCostModel = true
	p.Method = method
	return p
}

// SelStats summarises a selection run (feeding Table 2 and the analyses).
type SelStats struct {
	// CandidatesConsidered counts profiled conditional branches examined.
	CandidatesConsidered int
	// Simple, Nested, Freq, Loop count selected diverge branches by CFG type.
	Simple int
	Nested int
	Freq   int
	Loop   int
	// Short counts always-predicate short hammocks among the selected.
	Short int
	// RetCFM counts selected branches with a return CFM point.
	RetCFM int
	// RejectedByCost counts candidates the cost model rejected.
	RejectedByCost int
	// RejectedByThreshold counts candidates the heuristics rejected.
	RejectedByThreshold int
	// Rejected2D counts branches excluded by the 2D-profiling filter.
	Rejected2D int
}

// Selected returns the total number of selected diverge branches.
func (s SelStats) Selected() int { return s.Simple + s.Nested + s.Freq + s.Loop }
