package sample

import (
	"math"
	"testing"

	"dmp/internal/pipeline"
)

func mkIv(retired uint64, cycles int64, complete bool) pipeline.IntervalResult {
	return pipeline.IntervalResult{Retired: retired, Cycles: cycles, Complete: complete}
}

// TestAggregateEmpty: no intervals at all — the estimate must be flagged
// unbounded, never silently zero-error.
func TestAggregateEmpty(t *testing.T) {
	r := Result{Conf: DefaultConf()}
	aggregate(&r, nil)
	if !r.Unbounded || r.Intervals != 0 || r.MeanCPI != 0 || r.IPCErr != 0 {
		t.Errorf("empty aggregate: %+v", r)
	}
}

// TestAggregateSingleInterval: one usable interval yields a point estimate
// but no spread, so the confidence interval is unbounded.
func TestAggregateSingleInterval(t *testing.T) {
	r := Result{Conf: DefaultConf(), TotalInsts: 100_000}
	aggregate(&r, []pipeline.IntervalResult{mkIv(2000, 5000, true)})
	if !r.Unbounded {
		t.Error("single interval must leave the CI unbounded")
	}
	if r.MeanCPI != 2.5 {
		t.Errorf("MeanCPI = %v, want 2.5", r.MeanCPI)
	}
	if r.IPCErr != 0 {
		t.Errorf("IPCErr = %v, want 0 (flagged unbounded instead)", r.IPCErr)
	}
	if r.EstCycles != 250_000 {
		t.Errorf("EstCycles = %d, want 250000", r.EstCycles)
	}
	if !r.Covers(123.0) {
		t.Error("unbounded estimates cover everything by definition")
	}
}

// TestAggregateDegenerate: zero-retirement windows are counted, surfaced and
// excluded — they carry no timing signal and would poison the mean as +Inf
// or NaN CPI.
func TestAggregateDegenerate(t *testing.T) {
	r := Result{Conf: DefaultConf(), TotalInsts: 100_000}
	ivs := []pipeline.IntervalResult{
		mkIv(2000, 4000, true),
		mkIv(0, 0, false), // trace ended before the warmup did
		mkIv(2000, 4200, true),
	}
	aggregate(&r, ivs)
	if r.Degenerate != 1 || r.Complete != 2 || r.Intervals != 3 {
		t.Errorf("counts: degenerate=%d complete=%d intervals=%d", r.Degenerate, r.Complete, r.Intervals)
	}
	if r.Unbounded {
		t.Error("two usable intervals should bound the estimate")
	}
	if math.IsNaN(r.MeanCPI) || math.IsInf(r.MeanCPI, 0) {
		t.Errorf("MeanCPI = %v", r.MeanCPI)
	}
	if want := (4000.0/2000 + 4200.0/2000) / 2; math.Abs(r.MeanCPI-want) > 1e-12 {
		t.Errorf("MeanCPI = %v, want %v", r.MeanCPI, want)
	}
}

// TestAggregateIncomplete: a window that closed short of its measurement
// length (interval shorter than the configured length, e.g. trace end) is
// recorded but not averaged — a partial window biases CPI.
func TestAggregateIncomplete(t *testing.T) {
	r := Result{Conf: DefaultConf(), TotalInsts: 100_000}
	ivs := []pipeline.IntervalResult{
		mkIv(2000, 4000, true),
		mkIv(500, 9000, false), // partial tail with pathological CPI
		mkIv(2000, 4000, true),
	}
	aggregate(&r, ivs)
	if r.Complete != 2 {
		t.Errorf("Complete = %d, want 2", r.Complete)
	}
	if r.MeanCPI != 2.0 {
		t.Errorf("MeanCPI = %v, want 2.0 (partial window must not contribute)", r.MeanCPI)
	}
	if r.WinRetired != 4000 {
		t.Errorf("WinRetired = %d, want 4000", r.WinRetired)
	}
}

// TestAggregateCI: the error bar must scale with the sample spread and cover
// the usual cases; identical intervals pin it at exactly zero.
func TestAggregateCI(t *testing.T) {
	r := Result{Conf: DefaultConf(), TotalInsts: 1_000_000}
	var ivs []pipeline.IntervalResult
	for i := 0; i < 8; i++ {
		ivs = append(ivs, mkIv(2000, 5000, true))
	}
	aggregate(&r, ivs)
	// Identical intervals carry zero statistical spread; what remains is
	// exactly the cold-start bias budget.
	bias := (1 / r.MeanCPI) * coldBiasInsts / float64(r.TotalInsts)
	if r.SECPI != 0 {
		t.Errorf("identical intervals: SECPI=%v, want 0", r.SECPI)
	}
	if math.Abs(r.IPCErr-bias) > 1e-12 {
		t.Errorf("identical intervals: IPCErr=%v, want bias budget %v", r.IPCErr, bias)
	}
	if r.Unbounded {
		t.Error("eight intervals must not be unbounded")
	}

	spread := Result{Conf: DefaultConf(), TotalInsts: 1_000_000}
	ivs = ivs[:0]
	for i := 0; i < 8; i++ {
		ivs = append(ivs, mkIv(2000, 4000+int64(i)*300, true))
	}
	aggregate(&spread, ivs)
	if spread.IPCErr <= 0 {
		t.Errorf("spread intervals: IPCErr=%v, want > 0", spread.IPCErr)
	}
	if !spread.Covers(spread.IPC()) {
		t.Error("estimate must cover its own center")
	}
}

// TestOffAtBounds: the per-stratum jitter stays inside the stratum's slack
// for every (k, span) shape, and actually varies across strata (a constant
// offset would reintroduce systematic aliasing).
func TestOffAtBounds(t *testing.T) {
	c := SampleConf{Seed: 1}
	for _, span := range []uint64{1, 2, 7, 86_001} {
		seen := map[uint64]bool{}
		for k := uint64(0); k < 200; k++ {
			off := c.offAt(k, span)
			if off >= span {
				t.Fatalf("offAt(%d, %d) = %d out of range", k, span, off)
			}
			seen[off] = true
		}
		if span > 100 && len(seen) < 50 {
			t.Errorf("span %d: only %d distinct offsets in 200 strata", span, len(seen))
		}
	}
}

// TestIntervalStartsNonOverlapping: placements are strictly increasing, at
// least warmup+interval apart, and always fit whole inside the program.
func TestIntervalStartsNonOverlapping(t *testing.T) {
	sc := DefaultConf()
	for _, total := range []uint64{100_000, 253_017, 1_424_999} {
		for seed := uint64(1); seed <= 5; seed++ {
			sc.Seed = seed
			starts := intervalStarts(sc, sc.Period, total)
			detail := sc.Warmup + sc.Interval
			for i, s := range starts {
				if s+detail > total {
					t.Fatalf("total=%d seed=%d: interval %d at %d overruns", total, seed, i, s)
				}
				if i > 0 && s < starts[i-1]+detail {
					t.Fatalf("total=%d seed=%d: interval %d at %d overlaps previous at %d",
						total, seed, i, s, starts[i-1])
				}
			}
			if want := int(total / sc.Period); len(starts) < want-1 || len(starts) > want+1 {
				t.Errorf("total=%d: %d starts for %d strata", total, len(starts), want)
			}
		}
	}
}

// TestTotalMemo: the count memo stores and recalls, and flushes wholesale at
// the cap instead of growing without bound.
func TestTotalMemo(t *testing.T) {
	// Distinct synthetic keys; real keys come from content hashing, which
	// TestSampledDeterministic exercises end to end.
	base := totalKey{progH: 0xabcdef, inputH: 42}
	storeTotal(base, 1234)
	if v, ok := totalMemo.Load(base); !ok || v.(uint64) != 1234 {
		t.Fatalf("memo lookup after store: %v %v", v, ok)
	}
	for i := uint64(0); i < totalMemoCap+10; i++ {
		storeTotal(totalKey{progH: i, inputH: ^i}, i)
	}
	if n := totalMemoN.Load(); n > totalMemoCap {
		t.Errorf("memo grew past cap: %d entries", n)
	}
}
