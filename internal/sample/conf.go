// Package sample implements SMARTS-style sampled simulation: short detailed
// intervals (warmup + measurement) run through the cycle-level pipeline
// model, separated by functional fast-forward on the predecoded emulator.
// Architectural state crosses the boundary via emu snapshots; the per-shard
// microarchitectural state (branch predictor, confidence estimator, BTB,
// caches) stays warm across the intervals of one shard, and each interval's
// warmup re-trains whatever went stale during the skip.
//
// The per-interval CPIs form the statistical estimate: their mean scales the
// program's instruction count into an estimated cycle total, and their
// Student-t confidence interval is the error bar every consumer must carry.
// The full-fidelity pipeline run stays the reference — sampling is an
// estimator whose error is measured (the dmpbench -exp sample-error gate),
// never assumed.
package sample

import (
	"fmt"
)

// SampleConf configures the sampling executor. The zero value means "no
// sampling"; DefaultConf returns the tuned defaults the evaluation gates
// run at. The struct is serializable (JSON for job specs and -metrics-json,
// AppendCanonical for simulation-cache keys): two runs with equal canonical
// forms produce identical Results, so the conf participates in memoization
// keys exactly like pipeline.Config does.
type SampleConf struct {
	// Enabled turns sampling on; a zero conf leaves the full-fidelity path
	// in charge.
	Enabled bool `json:"enabled"`
	// Interval is the measured length of each detailed interval, in
	// on-trace instructions.
	Interval uint64 `json:"interval"`
	// Warmup is the detailed-warmup length preceding each measurement, in
	// on-trace instructions. It re-trains predictor/cache state after a
	// functional skip and absorbs the shard's cold start.
	Warmup uint64 `json:"warmup"`
	// Period is the distance between interval starts, in instructions; the
	// fraction (Warmup+Interval)/Period is the detailed-simulation share of
	// the run. Must satisfy Period >= Warmup+Interval.
	Period uint64 `json:"period"`
	// Seed randomises interval placement: the program is tiled into
	// Period-length strata and each stratum's interval lands at a
	// seed-derived offset within it (stratified random sampling). Pure
	// systematic placement — one global offset, constant spacing — aliases
	// against periodic program behaviour, which measurably produces
	// confident wrong estimates on phase-heavy workloads; per-stratum
	// jitter keeps the spacing near-systematic while breaking the
	// resonance.
	Seed uint64 `json:"seed"`
	// Confidence is the two-sided level of the reported interval (0 means
	// the 0.95 default).
	Confidence float64 `json:"confidence,omitempty"`
	// WarmLead is the functional-warming lead-in of each shard, in
	// instructions: the shard's machine is forked that far before its first
	// interval and fast-forwarded with predictor/cache warming, so the
	// shard does not start detailed simulation against cold
	// microarchitectural state (0 = the 50_000 default). Within a shard,
	// every skip between intervals warms the same way.
	WarmLead uint64 `json:"warm_lead,omitempty"`
	// PredLead is the predictor-training tail of each functional
	// fast-forward, in instructions: the last PredLead instructions before
	// a detailed interval warm the branch predictor and confidence
	// estimator in addition to the always-warmed caches/BTB/history
	// (0 = the 20_000 default). Per-branch predictor training is the most
	// expensive warming operation, and the predictor tables re-converge
	// over tens of thousands of instructions, so training through the whole
	// skip buys nothing over training through its tail.
	PredLead uint64 `json:"pred_lead,omitempty"`
	// MinIntervals is the minimum number of intervals worth sampling: a
	// program too short for that many falls back to one exact full-fidelity
	// run (Result.Exact), because a two-interval estimate is noise with
	// error bars wider than the run is long.
	MinIntervals int `json:"min_intervals,omitempty"`
	// Shards sets the number of parallel interval shards. 0 (the default)
	// runs one chained stream: every interval inherits the full warm
	// microarchitectural history of everything before it, which measured
	// accuracy on memory-bound workloads depends on (a shard's lead-in
	// cannot rebuild a 1MB L2 working set). Shards >= 2 splits the
	// intervals into contiguous chains fanned out across cores through the
	// process-wide workpool budget — wall-clock over fidelity, the
	// measured per-shard cold-start cost is documented in EXPERIMENTS.md.
	// The value is part of the canonical form: it is deliberately NOT
	// derived from the machine, so results and cache keys are
	// host-independent.
	Shards int `json:"shards,omitempty"`
}

// DefaultConf returns the tuned sampling configuration: 2k-instruction
// measured intervals behind 2k of detailed warmup every 90k instructions
// (4.4% detailed share), functional warming everywhere in between with a
// 20k-instruction predictor-training tail, a 50k-instruction warmed shard
// lead-in, 95% confidence. The tuning is pinned by the dmpbench -exp
// sample-error gate: every corpus aggregate must land inside its reported
// error bar.
func DefaultConf() SampleConf {
	return SampleConf{
		Enabled:      true,
		Interval:     2000,
		Warmup:       2000,
		Period:       90_000,
		Seed:         1,
		WarmLead:     50_000,
		PredLead:     20_000,
		Confidence:   0.95,
		MinIntervals: 8,
	}
}

// Normalize returns the conf with every optional field resolved to its
// default — the form Run executes and AppendCanonical keys on. Consumers
// that display or compare confs should normalize first.
func (c SampleConf) Normalize() SampleConf { return c.withDefaults() }

// withDefaults fills the optional fields.
func (c SampleConf) withDefaults() SampleConf {
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.MinIntervals <= 0 {
		c.MinIntervals = 4
	}
	if c.WarmLead == 0 {
		c.WarmLead = 50_000
	}
	if c.PredLead == 0 {
		c.PredLead = 20_000
	}
	return c
}

// Validate checks the configuration shape. A disabled conf is always valid.
func (c SampleConf) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.Interval == 0:
		return fmt.Errorf("sample: interval length must be positive")
	case c.Period == 0:
		return fmt.Errorf("sample: period must be positive")
	case c.Period < c.Warmup+c.Interval:
		return fmt.Errorf("sample: period %d shorter than warmup+interval %d", c.Period, c.Warmup+c.Interval)
	case c.Confidence < 0 || c.Confidence >= 1:
		return fmt.Errorf("sample: confidence %v outside (0, 1)", c.Confidence)
	case c.MinIntervals < 0:
		return fmt.Errorf("sample: min_intervals must be >= 0")
	case c.Shards < 0:
		return fmt.Errorf("sample: shards must be >= 0")
	}
	return nil
}

// AppendCanonical appends a deterministic rendering of the configuration to
// dst, mirroring pipeline.Config.AppendCanonical: every field participates,
// so adding a field changes the canonical form and invalidates stale cache
// entries keyed on it. Defaults are resolved first, so an explicit 0.95
// confidence and an implied one key identically.
func (c SampleConf) AppendCanonical(dst []byte) []byte {
	return fmt.Appendf(dst, "%+v", c.withDefaults())
}

// offAt derives stratum k's interval offset in [0, span) from the seed
// (splitmix64 finalizer over seed and stratum index, so consecutive strata
// and consecutive seeds give unrelated offsets). span is the stratum's
// placement slack: period - warmup - interval + 1 for a full stratum.
func (c SampleConf) offAt(k, span uint64) uint64 {
	z := c.Seed + (k+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z % span
}
