package sample

import (
	"bytes"
	"encoding/json"
	"sync"

	"dmp/internal/pipeline"
	"dmp/internal/stats"
)

// Result is the outcome of one sampled simulation: the population estimate
// (mean CPI over the measured intervals, scaled to the program's full
// instruction count) plus the error bar that makes the estimate honest. A
// program too short to sample carries the exact full-fidelity Stats instead
// (Exact set, error bar zero).
type Result struct {
	// Conf is the configuration the run sampled at (defaults resolved).
	Conf SampleConf `json:"conf"`

	// Exact marks a full-fidelity fallback: the program was shorter than
	// Conf.MinIntervals periods, so Full holds the exact Stats and the
	// estimate fields below restate it with a zero error bar.
	Exact bool `json:"exact,omitempty"`
	// Full is the exact statistics of an Exact run (nil otherwise).
	Full *pipeline.Stats `json:"full,omitempty"`

	// Period is the effective inter-interval spacing the run used: the
	// configured one, or a proportionally shrunk one for a program too
	// short to fit Conf.MinIntervals at the configured spacing.
	Period uint64 `json:"period,omitempty"`
	// TotalInsts is the program's full dynamic instruction count (bounded
	// by Config.MaxInsts) — the N the per-interval estimate scales to.
	TotalInsts uint64 `json:"total_insts"`
	// Shards is the number of parallel interval shards the run used.
	Shards int `json:"shards,omitempty"`
	// Intervals / Complete / Degenerate count scheduled intervals, windows
	// that closed at full measurement length, and zero-retirement windows
	// (excluded from the estimate, surfaced here).
	Intervals  int `json:"intervals"`
	Complete   int `json:"complete"`
	Degenerate int `json:"degenerate,omitempty"`
	// DetailedInsts is the number of instructions simulated in detail
	// (warmup + measured, all intervals); WarmInsts is the number
	// fast-forwarded with functional warming (shard lead-ins and in-shard
	// skips). The remainder of TotalInsts ran on the block-batched
	// functional path with no microarchitectural bookkeeping at all.
	DetailedInsts uint64 `json:"detailed_insts"`
	WarmInsts     uint64 `json:"warm_insts"`

	// MeanCPI and SECPI are the mean and standard error of the
	// per-interval cycles-per-instruction sample.
	MeanCPI float64 `json:"mean_cpi"`
	SECPI   float64 `json:"se_cpi"`
	// IPCErr is the half-width of the two-sided confidence interval on the
	// IPC estimate at Conf.Confidence (delta method: SECPI scaled by the
	// t critical value and 1/MeanCPI²). Zero for Exact runs.
	IPCErr float64 `json:"ipc_err"`
	// Unbounded marks an estimate with fewer than two usable intervals:
	// no spread estimate exists, so the true confidence interval is
	// unbounded and IPCErr is meaningless (reported as 0, flagged here).
	Unbounded bool `json:"unbounded,omitempty"`

	// Window totals across usable intervals, the numerators of the scaled
	// per-kilo-instruction estimates.
	WinRetired uint64 `json:"win_retired"`
	WinCycles  int64  `json:"win_cycles"`
	WinMisp    uint64 `json:"win_misp"`
	WinCondBr  uint64 `json:"win_cond_br"`
	WinFlushes uint64 `json:"win_flushes"`

	// EstCycles is the estimated full-run cycle count: TotalInsts×MeanCPI.
	EstCycles int64 `json:"est_cycles"`
}

// IPC returns the estimated instructions per cycle. Exact results report
// the full run's own ratio: 1/(Cycles/Retired) and Retired/Cycles round
// differently in floating point, and an exact result's confidence interval
// is a single point, so the ulp would read as a coverage miss.
func (r Result) IPC() float64 {
	if r.Exact && r.Full != nil {
		return r.Full.IPC()
	}
	if r.MeanCPI == 0 {
		return 0
	}
	return 1 / r.MeanCPI
}

// RelErr returns the confidence-interval half-width as a fraction of the
// IPC estimate (0 for exact runs).
func (r Result) RelErr() float64 {
	ipc := r.IPC()
	if ipc == 0 {
		return 0
	}
	return r.IPCErr / ipc
}

// Covers reports whether v lies inside the result's confidence interval
// around the IPC estimate. Unbounded estimates cover everything (that is
// what an unbounded error bar means); callers who need a usable bound must
// check Unbounded separately.
func (r Result) Covers(v float64) bool {
	if r.Unbounded {
		return true
	}
	ipc := r.IPC()
	return v >= ipc-r.IPCErr && v <= ipc+r.IPCErr
}

// AsStats projects the estimate into a pipeline.Stats so that every
// IPC/MPKI/flush-rate consumer (tables, improvement computations, footers)
// works unchanged on sampled runs: Cycles and the branch counters are the
// scaled estimates, Retired is the true instruction count. Exact results
// return the full Stats as-is. A run with no usable window returns the zero
// Stats, whose Degenerate() flag tells consumers the estimate is void.
func (r Result) AsStats() pipeline.Stats {
	if r.Exact && r.Full != nil {
		return *r.Full
	}
	if r.WinRetired == 0 {
		return pipeline.Stats{}
	}
	scale := float64(r.TotalInsts) / float64(r.WinRetired)
	return pipeline.Stats{
		Cycles:       r.EstCycles,
		Retired:      r.TotalInsts,
		Mispredicted: scaleCount(r.WinMisp, scale),
		CondBranches: scaleCount(r.WinCondBr, scale),
		Flushes:      scaleCount(r.WinFlushes, scale),
	}
}

func scaleCount(n uint64, scale float64) uint64 {
	return uint64(float64(n)*scale + 0.5)
}

// Schema returns a short stable fingerprint of the Result wire shape,
// folded into simulation-cache keys (and the on-disk layout) so extending
// Result turns stale sampled entries into misses instead of silently
// zero-filled decodes.
func Schema() string {
	schemaOnce.Do(func() { schemaHex = pipeline.SchemaOf(Result{}) })
	return schemaHex
}

var (
	schemaOnce sync.Once
	schemaHex  string
)

// MarshalResult encodes a Result for the on-disk cache layer.
func MarshalResult(r Result) ([]byte, error) { return json.Marshal(r) }

// UnmarshalResult decodes a Result previously encoded with MarshalResult,
// rejecting unknown fields so entries written by a newer shape read as
// misses rather than silent truncations.
func UnmarshalResult(b []byte) (Result, error) {
	var r Result
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Result{}, err
	}
	return r, nil
}

// aggregate folds per-interval results into the estimate fields of r.
// Usable intervals are the complete, non-degenerate ones; incomplete or
// zero-retirement windows are counted but never averaged (a partial tail
// would bias the CPI low or poison it with drain cycles).
func aggregate(r *Result, ivs []pipeline.IntervalResult) {
	cpis := make([]float64, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Degenerate() {
			r.Degenerate++
			continue
		}
		if !iv.Complete {
			continue
		}
		r.Complete++
		cpis = append(cpis, iv.CPI())
		r.WinRetired += iv.Retired
		r.WinCycles += iv.Cycles
		r.WinMisp += iv.Mispredicted
		r.WinCondBr += iv.CondBranches
		r.WinFlushes += iv.Flushes
	}
	r.Intervals = len(ivs)
	if len(cpis) == 0 {
		r.Unbounded = true
		return
	}
	r.MeanCPI = stats.Mean(cpis)
	r.SECPI = stats.StdErr(cpis)
	r.EstCycles = int64(float64(r.TotalInsts)*r.MeanCPI + 0.5)
	if len(cpis) < 2 {
		r.Unbounded = true
		return
	}
	t := stats.TCritical(r.Conf.Confidence, len(cpis)-1)
	// Delta method: Var(1/X) ≈ Var(X)/mean(X)^4.
	r.IPCErr = t * r.SECPI / (r.MeanCPI * r.MeanCPI)
	// Non-sampling bias budget: functional warming trains the predictors on
	// a clean outcome stream — no wrong-path history pollution — so windows
	// near the start of a run measure against optimistically warm state and
	// the estimate reads high. The effect is the cold-start transient's
	// share of the run: ~coldBiasInsts of training divided by the program
	// length. Negligible for corpus-scale programs (<3% at 1M insts), it
	// dominates the statistical term for short homogeneous loops, whose
	// windows barely vary. Widening the interval keeps Covers honest there.
	if r.TotalInsts > 0 && r.MeanCPI > 0 {
		r.IPCErr += coldBiasInsts / (r.MeanCPI * float64(r.TotalInsts))
	}
}

// coldBiasInsts is the systematic-error budget for functional warming: the
// approximate length, in instructions, of the cold-start transient whose
// cost sampled windows under-observe (perceptron and confidence tables
// training from scratch). Calibrated against full-fidelity differentials on
// generated programs of 100K-700K instructions, where the observed bias
// tracks ~30K/total.
const coldBiasInsts = 35_000
