package sample_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"dmp/internal/bench"
	"dmp/internal/isa"
	"dmp/internal/pipeline"
	"dmp/internal/sample"
)

func compileBench(t testing.TB, name string) (*isa.Program, []int64) {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("no benchmark %q", name)
	}
	prog, err := b.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return prog, b.Input(bench.RunInput, 1)
}

// tinyLoopProgram builds a program retiring roughly 3n instructions — far
// below any sensible sampling threshold.
func tinyLoopProgram(t testing.TB, n int64) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	b.Func("main")
	b.MovI(1, n)
	b.Label("loop")
	b.ALUI(isa.OpAdd, 1, 1, -1)
	b.Bnez(1, "loop")
	b.Halt()
	prog, err := b.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return prog
}

// TestSampledCoversFull is the core accuracy contract on real workloads: the
// sampled IPC estimate's confidence interval must cover the full-fidelity
// IPC, on both a long program (streamed at the configured period) and a
// short one (re-streamed at a shrunk period).
func TestSampledCoversFull(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()
	for _, name := range []string{"gzip", "vortex"} {
		prog, input := compileBench(t, name)
		st, err := pipeline.Run(prog, input, cfg)
		if err != nil {
			t.Fatalf("%s: full run: %v", name, err)
		}
		r, err := sample.Run(context.Background(), prog, input, cfg, sc)
		if err != nil {
			t.Fatalf("%s: sampled run: %v", name, err)
		}
		if r.Exact {
			t.Fatalf("%s: fell back to exact; corpus programs must be long enough to sample", name)
		}
		if r.Intervals < sc.MinIntervals {
			t.Fatalf("%s: %d intervals, want >= %d", name, r.Intervals, sc.MinIntervals)
		}
		if r.TotalInsts != st.Retired {
			t.Fatalf("%s: TotalInsts %d != full-run retired %d", name, r.TotalInsts, st.Retired)
		}
		if r.Unbounded {
			t.Fatalf("%s: estimate unbounded with %d intervals", name, r.Intervals)
		}
		if !r.Covers(st.IPC()) {
			t.Errorf("%s: full IPC %.4f outside sampled CI %.4f ± %.4f",
				name, st.IPC(), r.IPC(), r.IPCErr)
		}
		if r.RelErr() <= 0 {
			t.Errorf("%s: RelErr %v, want > 0", name, r.RelErr())
		}
		proj := r.AsStats()
		if proj.Retired != st.Retired {
			t.Errorf("%s: AsStats retired %d != %d", name, proj.Retired, st.Retired)
		}
		if proj.Cycles != r.EstCycles {
			t.Errorf("%s: AsStats cycles %d != EstCycles %d", name, proj.Cycles, r.EstCycles)
		}
		if r.DetailedInsts == 0 || r.WarmInsts == 0 {
			t.Errorf("%s: accounting zero: detailed=%d warm=%d", name, r.DetailedInsts, r.WarmInsts)
		}
		if r.DetailedInsts+r.WarmInsts >= r.TotalInsts {
			t.Errorf("%s: detailed %d + warm %d should leave a plain-skipped remainder of %d total",
				name, r.DetailedInsts, r.WarmInsts, r.TotalInsts)
		}
	}
}

// TestSampledDeterministic pins the memoization contract: a repeat run — the
// second one resolves the instruction count from the memo and skips the
// discovery pass — must produce a bit-identical Result.
func TestSampledDeterministic(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()
	for _, name := range []string{"vortex", "twolf"} {
		prog, input := compileBench(t, name)
		a, err := sample.Run(context.Background(), prog, input, cfg, sc)
		if err != nil {
			t.Fatalf("%s: first run: %v", name, err)
		}
		b, err := sample.Run(context.Background(), prog, input, cfg, sc)
		if err != nil {
			t.Fatalf("%s: second run: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeat run diverged:\n  first  %+v\n  second %+v", name, a, b)
		}
	}
}

// TestSampledSeedMoves checks the placement seed actually moves the sample:
// two seeds must measure different interval sets (identical estimates would
// mean the jitter is dead and systematic aliasing is back on the table).
func TestSampledSeedMoves(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	prog, input := compileBench(t, "twolf")
	sc := sample.DefaultConf()
	a, err := sample.Run(context.Background(), prog, input, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 99
	b, err := sample.Run(context.Background(), prog, input, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.WinCycles == b.WinCycles && a.WinMisp == b.WinMisp {
		t.Errorf("seeds 1 and 99 measured identical windows (cycles=%d misp=%d)", a.WinCycles, a.WinMisp)
	}
}

// TestExactFallbackShortProgram: a program far below MinIntervals periods
// must come back as one exact full-fidelity run, identical to pipeline.Run.
func TestExactFallbackShortProgram(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	prog := tinyLoopProgram(t, 500)
	st, err := pipeline.Run(prog, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sample.Run(context.Background(), prog, nil, cfg, sample.DefaultConf())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || r.Full == nil {
		t.Fatalf("short program did not fall back to exact: %+v", r)
	}
	if r.IPCErr != 0 || r.Unbounded {
		t.Errorf("exact run should carry a zero error bar: err=%v unbounded=%v", r.IPCErr, r.Unbounded)
	}
	if got := r.AsStats(); !reflect.DeepEqual(got, st) {
		t.Errorf("exact AsStats = %+v, want full stats %+v", got, st)
	}
	if r.IPC() != st.IPC() {
		t.Errorf("exact IPC %v != full %v", r.IPC(), st.IPC())
	}
	if !r.Covers(st.IPC()) {
		t.Errorf("exact result must cover its own IPC")
	}
}

// TestDisabledConfRunsExact: a conf with Enabled unset routes to the
// full-fidelity path regardless of the other fields.
func TestDisabledConfRunsExact(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	prog, input := compileBench(t, "vortex")
	st, err := pipeline.Run(prog, input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sample.Run(context.Background(), prog, input, cfg, sample.SampleConf{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || !reflect.DeepEqual(r.AsStats(), st) {
		t.Errorf("disabled conf: got %+v, want exact equal to full stats", r)
	}
}

// TestShardedRun exercises the explicit parallel strategy end to end: the
// count pass, the replay forks and the workpool fan-out, with deterministic
// placement equal to the streamed one.
func TestShardedRun(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	prog, input := compileBench(t, "vortex")
	sc := sample.DefaultConf()
	sc.Shards = 2
	r, err := sample.Run(context.Background(), prog, input, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Fatal("sharded run fell back to exact")
	}
	if r.Shards != 2 {
		t.Fatalf("Shards = %d, want 2", r.Shards)
	}
	if r.Intervals < sc.MinIntervals || r.Complete == 0 || r.MeanCPI <= 0 {
		t.Fatalf("sharded estimate malformed: %+v", r)
	}
	// Same conf, same shards: sharded runs are deterministic too.
	again, err := sample.Run(context.Background(), prog, input, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, again) {
		t.Errorf("sharded repeat diverged:\n  first  %+v\n  second %+v", r, again)
	}
}

// TestSampledCancellation: a cancelled context must abort the run inside the
// fast-forward, surfacing the context error rather than a result.
func TestSampledCancellation(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	prog, input := compileBench(t, "gzip")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sample.Run(ctx, prog, input, cfg, sample.DefaultConf())
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error %q does not wrap context.Canceled", err)
	}
}

func TestValidate(t *testing.T) {
	base := sample.DefaultConf()
	cases := []struct {
		name    string
		mutate  func(*sample.SampleConf)
		wantErr string
	}{
		{"default ok", func(c *sample.SampleConf) {}, ""},
		{"disabled anything goes", func(c *sample.SampleConf) { *c = sample.SampleConf{Confidence: 7} }, ""},
		{"zero interval", func(c *sample.SampleConf) { c.Interval = 0 }, "interval"},
		{"zero period", func(c *sample.SampleConf) { c.Period = 0 }, "period"},
		{"period too small", func(c *sample.SampleConf) { c.Period = c.Warmup + c.Interval - 1 }, "shorter than"},
		{"confidence one", func(c *sample.SampleConf) { c.Confidence = 1 }, "confidence"},
		{"confidence negative", func(c *sample.SampleConf) { c.Confidence = -0.5 }, "confidence"},
		{"negative min intervals", func(c *sample.SampleConf) { c.MinIntervals = -1 }, "min_intervals"},
		{"negative shards", func(c *sample.SampleConf) { c.Shards = -2 }, "shards"},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		err := c.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	prog, input := compileBench(t, "vortex")
	r, err := sample.Run(context.Background(), prog, input, cfg, sample.DefaultConf())
	if err != nil {
		t.Fatal(err)
	}
	b, err := sample.MarshalResult(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sample.UnmarshalResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip diverged:\n  in  %+v\n  out %+v", r, back)
	}
	if _, err := sample.UnmarshalResult([]byte(`{"total_insts": 1, "bogus_field": 2}`)); err == nil {
		t.Error("unknown field accepted; cache entries from newer shapes must read as misses")
	}
	if sample.Schema() == "" {
		t.Error("empty schema fingerprint")
	}
}

// TestCanonicalDefaults: an implied default and its explicit spelling must
// key identically, and any changed field must change the canonical form.
func TestCanonicalDefaults(t *testing.T) {
	implied := sample.SampleConf{Enabled: true, Interval: 1000, Warmup: 1000, Period: 50_000, Seed: 1}
	explicit := implied
	explicit.Confidence = 0.95
	a := string(implied.AppendCanonical(nil))
	b := string(explicit.AppendCanonical(nil))
	if a != b {
		t.Errorf("implied and explicit defaults key differently:\n  %s\n  %s", a, b)
	}
	moved := implied
	moved.Seed = 2
	if c := string(moved.AppendCanonical(nil)); c == a {
		t.Error("seed change did not change the canonical form")
	}
}
