package sample

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dmp/internal/emu"
	"dmp/internal/isa"
	"dmp/internal/pipeline"
	"dmp/internal/workpool"
)

// Run executes a sampled simulation of (prog, input, cfg) under sc. The
// program is tiled into Period-length strata; each stratum's interval lands
// at a seed-derived offset inside it (stratified random sampling — see
// SampleConf.Seed) and runs warmup+measure instructions of detailed
// simulation, with functional fast-forward plus microarchitectural warming
// in between. The per-interval CPIs aggregate into the estimate and its
// Student-t confidence interval.
//
// Two execution strategies share that placement:
//
//   - Shards <= 1 (the default): one chained stream. A single pipeline walks
//     the whole program, alternating warmed skips with detailed intervals,
//     so every interval inherits the full warm history of everything before
//     it and the instruction count is discovered en route — no separate
//     counting or replay pass.
//   - Shards >= 2: a functional pass counts the program, a replay pass forks
//     the architectural state ahead of each shard's first interval, and the
//     contiguous interval chains fan out across cores through the
//     process-wide workpool budget.
//
// Everything that shapes the result — interval placement, shard boundaries —
// derives from (instruction count, sc) alone, never from the host, so a
// given (program, input, cfg, sc) always produces the identical Result and
// can be memoized exactly like a full-fidelity run.
func Run(ctx context.Context, prog *isa.Program, input []int64, cfg pipeline.Config, sc SampleConf) (Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if !sc.Enabled {
		return runExact(ctx, prog, input, cfg, sc)
	}
	if sc.Shards >= 2 {
		return runSharded(ctx, prog, input, cfg, sc)
	}

	// A program's dynamic instruction count is a pure function of (program,
	// input, MaxInsts) — it does not depend on the sampling conf or the
	// machine model — so a remembered count from any earlier run lets this
	// one pick the right period up front and stop at its last interval:
	// no discovery pass, no tail walk. Config sweeps and repeated server
	// jobs hit this path on every run after the first.
	key := memoKey(prog, input, cfg.MaxInsts)
	if total, ok := totalMemo.Load(key); ok {
		return runKnown(ctx, prog, input, cfg, sc, nil, total.(uint64))
	}

	m := emu.New(prog, input, 0)
	r, total, err := runStream(ctx, m, cfg, sc, sc.Period, 0)
	if err != nil {
		return Result{}, err
	}
	storeTotal(key, total)
	if r.Intervals >= sc.MinIntervals {
		return r, nil
	}
	// Too short for MinIntervals at the configured spacing: fall through to
	// the known-total decision tree, re-streaming on the same machine (one
	// in-place clear instead of a fresh 8MB image plus a predecode pass).
	m.Reset()
	return runKnown(ctx, prog, input, cfg, sc, m, total)
}

// runKnown picks the sampling strategy for a program whose instruction count
// is already known — from the memo or from a discovery stream that came up
// short — and runs it on m (a fresh machine is made when m is nil). It makes
// exactly the decisions the discovery path would: stream at the configured
// period when that yields enough intervals, at a proportionally shrunk
// period when the program is short, and fall back to one exact
// full-fidelity run when the program cannot fit MinIntervals wall to wall.
// Results are bit-identical between the discovery and known-total paths:
// interval placement depends only on (total, sc).
func runKnown(ctx context.Context, prog *isa.Program, input []int64, cfg pipeline.Config, sc SampleConf, m *emu.Machine, total uint64) (Result, error) {
	period := sc.Period
	if len(intervalStarts(sc, period, total)) < sc.MinIntervals {
		if total < minSampledTotal(sc) {
			return runExact(ctx, prog, input, cfg, sc)
		}
		period = total / uint64(sc.MinIntervals)
	}
	if m == nil {
		m = emu.New(prog, input, 0)
	}
	r, _, err := runStream(ctx, m, cfg, sc, period, total)
	if err != nil {
		return Result{}, err
	}
	if r.Intervals < sc.MinIntervals {
		return runExact(ctx, prog, input, cfg, sc)
	}
	return r, nil
}

// runStream is the single-chain strategy: place, skip, measure, repeat, with
// one pipeline carrying warm state end to end on m (a fresh or freshly Reset
// machine). When known is zero the trace's end doubles as the instruction
// count, which the caller needs for the shrink decision: the stretch past
// the last interval is consumed on the plain (unwarmed) block path, since
// nothing downstream can observe its warming. When known is the instruction
// count from a prior pass, the stream stops at its last interval and never
// touches the tail.
func runStream(ctx context.Context, m *emu.Machine, cfg pipeline.Config, sc SampleConf, period, known uint64) (Result, uint64, error) {
	detail := sc.Warmup + sc.Interval
	if period < detail {
		period = detail
	}
	span := period - detail + 1
	maxN := cfg.MaxInsts
	cfgS := cfg
	cfgS.MaxInsts = 0 // interval budget is managed by RunInterval
	cfgS.Tracer = nil
	sim := pipeline.NewFromMachine(m, cfgS)

	var ivs []pipeline.IntervalResult
	// warmed counts only the fast-forward that reached an interval: in
	// discovery mode the stream warms its way toward a placement that may
	// turn out not to fit, and that dangling skip must not leak into the
	// accounting — WarmInsts has to come out bit-identical whether the
	// instruction count was known up front (memo) or discovered en route.
	var warmed, detailed, warmedPending uint64
	for k := uint64(0); ; k++ {
		start := k*period + sc.offAt(k, span)
		if maxN > 0 && start+detail > maxN {
			break
		}
		if known > 0 && start+detail > known {
			break
		}
		need := start - sim.Consumed()
		skipped, err := sim.Skip(ctx, need, min(sc.PredLead, need))
		if err != nil {
			return Result{}, 0, fmt.Errorf("sample: skip to interval %d: %w", k, err)
		}
		warmedPending += skipped
		if skipped < need || sim.TraceDone() {
			break
		}
		before := sim.Consumed()
		iv, err := sim.RunInterval(ctx, sc.Warmup, sc.Interval)
		if err != nil {
			return Result{}, 0, fmt.Errorf("sample: interval %d: %w", k, err)
		}
		detailed += sim.Consumed() - before
		warmed += warmedPending
		warmedPending = 0
		ivs = append(ivs, iv)
		if sim.TraceDone() {
			break
		}
	}
	total := known
	if known == 0 {
		// Consume the tail on the plain path so the trace's end yields the
		// instruction count; at most one stratum remains.
		for !sim.TraceDone() {
			rem := uint64(math.MaxUint64) / 2
			if maxN > 0 {
				c := sim.Consumed()
				if c >= maxN {
					break
				}
				rem = maxN - c
			}
			n, err := sim.SkipPlain(ctx, rem)
			if err != nil {
				return Result{}, 0, fmt.Errorf("sample: tail: %w", err)
			}
			if n == 0 {
				break
			}
		}
		total = sim.Consumed()
	}

	r := Result{
		Conf:          sc,
		Period:        period,
		TotalInsts:    total,
		Shards:        1,
		DetailedInsts: detailed,
		WarmInsts:     warmed,
	}
	aggregate(&r, ivs)
	return r, total, nil
}

// totalMemo caches dynamic instruction counts across Run calls, keyed by
// content hash of (program, input, MaxInsts). Counts are exact and
// architecture-independent, so the memo never changes a Result — it only
// removes the discovery pass. The map is capped: on overflow it is dropped
// wholesale (counts are cheap to rediscover, and the cap only exists to
// bound memory against endless streams of generated programs).
var (
	totalMemo  sync.Map
	totalMemoN atomic.Int64
)

const totalMemoCap = 4096

type totalKey struct {
	progH, inputH uint64
	maxInsts      uint64
}

// memoKey hashes the program text and input tape (FNV-1a). Hashing content
// rather than keying on pointers keeps the memo from pinning dead programs
// in memory, at a cost of a few microseconds per Run.
func memoKey(prog *isa.Program, input []int64, maxInsts uint64) totalKey {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(uint64(prog.Entry))
	mix(uint64(prog.GlobalWords))
	for i := range prog.Code {
		in := &prog.Code[i]
		mix(uint64(in.Op) | uint64(in.Rd)<<8 | uint64(in.Rs1)<<16 | uint64(in.Rs2)<<24)
		if in.UseImm {
			mix(uint64(in.Imm) | 1<<63)
		}
		mix(uint64(in.Target))
	}
	progH := h
	h = uint64(offset)
	for _, v := range input {
		mix(uint64(v))
	}
	return totalKey{progH: progH, inputH: h, maxInsts: maxInsts}
}

func storeTotal(k totalKey, total uint64) {
	if totalMemoN.Load() >= totalMemoCap {
		totalMemo.Range(func(k, _ any) bool {
			totalMemo.Delete(k)
			return true
		})
		totalMemoN.Store(0)
	}
	if _, loaded := totalMemo.LoadOrStore(k, total); !loaded {
		totalMemoN.Add(1)
	}
}

// intervalStarts places the intervals that fit whole inside total
// instructions: stratum k's interval at k*period + offAt(k). Starts are
// strictly increasing with at least warmup+interval between consecutive
// ones, so intervals never overlap.
func intervalStarts(sc SampleConf, period, total uint64) []uint64 {
	detail := sc.Warmup + sc.Interval
	span := period - detail + 1
	var starts []uint64
	for k := uint64(0); k*period+detail <= total; k++ {
		if s := k*period + sc.offAt(k, span); s+detail <= total {
			starts = append(starts, s)
		}
	}
	return starts
}

// runSharded is the parallel strategy: the interval chain is split into
// contiguous shards fanned out across cores, each fork warmed through a
// WarmLead-long lead-in. Wall-clock over fidelity — a shard's lead-in
// cannot rebuild the deep cache state a chained stream carries, a measured
// cost documented in EXPERIMENTS.md.
func runSharded(ctx context.Context, prog *isa.Program, input []int64, cfg pipeline.Config, sc SampleConf) (Result, error) {
	key := memoKey(prog, input, cfg.MaxInsts)
	var total uint64
	if v, ok := totalMemo.Load(key); ok {
		total = v.(uint64)
	} else {
		var err error
		total, err = countInsts(ctx, prog, input, cfg.MaxInsts)
		if err != nil {
			return Result{}, err
		}
		storeTotal(key, total)
	}

	detail := sc.Warmup + sc.Interval
	period := sc.Period
	starts := intervalStarts(sc, period, total)
	if len(starts) < sc.MinIntervals {
		if total < minSampledTotal(sc) {
			return runExact(ctx, prog, input, cfg, sc)
		}
		period = max(detail, total/uint64(sc.MinIntervals))
		starts = intervalStarts(sc, period, total)
	}
	nIntervals := len(starts)
	if nIntervals < sc.MinIntervals {
		return runExact(ctx, prog, input, cfg, sc)
	}

	shards := min(sc.Shards, nIntervals)

	// Contiguous balanced assignment: shard i owns intervals
	// [first[i], first[i]+count[i]).
	first := make([]int, shards)
	count := make([]int, shards)
	base, rem := nIntervals/shards, nIntervals%shards
	for i, at := 0, 0; i < shards; i++ {
		first[i] = at
		count[i] = base
		if i < rem {
			count[i]++
		}
		at += count[i]
	}

	// Replay pass: fork the architectural state a warm lead-in before each
	// shard's first interval. One sequential sweep of the program on the
	// block-batched fast path; the forks are Clone (one memory-image copy),
	// not Snapshot+Restore (three).
	forks := make([]*emu.Machine, shards)
	bases := make([]uint64, shards) // absolute position of each fork
	{
		m := emu.New(prog, input, 0)
		var cur uint64
		for i := 0; i < shards; i++ {
			start := starts[first[i]]
			lead := min(sc.WarmLead, start)
			bases[i] = start - lead
			n, err := advance(ctx, m, bases[i]-cur)
			cur += n
			if err != nil {
				return Result{}, err
			}
			if cur != bases[i] {
				return Result{}, fmt.Errorf("sample: replay ended at %d of %d instructions", cur, bases[i])
			}
			forks[i] = m.Clone()
		}
	}

	// Shard fan-out. Each shard builds its own pipeline from its fork,
	// warms through its lead-in, and walks its intervals in order; results
	// land at their global interval index, so aggregation order is
	// deterministic regardless of which shard finishes first.
	cfgShard := cfg
	cfgShard.MaxInsts = 0 // interval budget is managed by RunInterval
	cfgShard.Tracer = nil
	ivs := make([]pipeline.IntervalResult, nIntervals)
	warms := make([]uint64, shards)
	err := workpool.RunIndexed(ctx, shards, shards,
		func(i int) string { return fmt.Sprintf("sample shard %d", i) },
		nil,
		func(i int) error {
			sim := pipeline.NewFromMachine(forks[i], cfgShard)
			for j := 0; j < count[i]; j++ {
				target := starts[first[i]+j]
				need := target - (bases[i] + sim.Consumed())
				skipped, err := sim.Skip(ctx, need, min(sc.PredLead, need))
				warms[i] += skipped
				if err != nil {
					return fmt.Errorf("sample: shard %d skip: %w", i, err)
				}
				if skipped < need {
					return fmt.Errorf("sample: shard %d: trace ended %d instructions before interval %d", i, need-skipped, first[i]+j)
				}
				iv, err := sim.RunInterval(ctx, sc.Warmup, sc.Interval)
				if err != nil {
					return fmt.Errorf("sample: shard %d interval %d: %w", i, first[i]+j, err)
				}
				ivs[first[i]+j] = iv
			}
			return nil
		})
	if err != nil {
		return Result{}, err
	}
	var warmed uint64
	for _, w := range warms {
		warmed += w
	}

	r := Result{
		Conf:          sc,
		Period:        period,
		TotalInsts:    total,
		Shards:        shards,
		DetailedInsts: uint64(nIntervals) * detail,
		WarmInsts:     warmed,
	}
	aggregate(&r, ivs)
	return r, nil
}

// minSampledTotal is the shortest program worth sampling. Below
// 3×MinIntervals×(Warmup+Interval) the detailed share would exceed a third
// of the program — the savings vanish — and the cold-start transient, which
// functional warming reproduces optimistically (clean outcome streams train
// the predictors without wrong-path history pollution), occupies enough of
// the run to bias the estimate past its own confidence interval. Such
// programs run exact instead.
func minSampledTotal(sc SampleConf) uint64 {
	return 3 * uint64(sc.MinIntervals) * (sc.Warmup + sc.Interval)
}

// runExact is the full-fidelity fallback: one ordinary pipeline run wrapped
// in a Result so every sampled-mode consumer handles short programs (and
// disabled confs) without a second code path.
func runExact(ctx context.Context, prog *isa.Program, input []int64, cfg pipeline.Config, sc SampleConf) (Result, error) {
	st, err := pipeline.RunCtx(ctx, prog, input, cfg)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Conf:          sc,
		Exact:         true,
		Full:          &st,
		TotalInsts:    st.Retired,
		DetailedInsts: st.Retired,
		EstCycles:     st.Cycles,
	}
	if st.Retired > 0 {
		r.MeanCPI = float64(st.Cycles) / float64(st.Retired)
	}
	return r, nil
}

// countInsts measures the program's dynamic instruction count on the
// predecoded fast path, honouring the same MaxInsts bound the full-fidelity
// trace feed applies.
func countInsts(ctx context.Context, prog *isa.Program, input []int64, maxInsts uint64) (uint64, error) {
	m := emu.New(prog, input, 0)
	if maxInsts == 0 {
		maxInsts = math.MaxUint64
	}
	return advance(ctx, m, maxInsts)
}

// advance runs m forward by at most n instructions on the block-batched fast
// path, polling ctx between batches. It returns the number retired, short
// only when the program halts. Faults surface as errors, matching the
// full-fidelity run, which fails on a faulting trace feed as well.
func advance(ctx context.Context, m *emu.Machine, n uint64) (uint64, error) {
	const pollEvery = 1 << 22
	var done, sincePoll uint64
	for done < n && !m.Halted() {
		if ctx != nil && sincePoll >= pollEvery {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				return done, fmt.Errorf("sample: cancelled: %w", err)
			}
		}
		br, err := m.RunBlock(n - done)
		done += br.N
		sincePoll += br.N
		if err != nil {
			if errors.Is(err, emu.ErrHalted) {
				break
			}
			return done, fmt.Errorf("sample: functional execution: %w", err)
		}
	}
	return done, nil
}
