package sample_test

import (
	"context"
	"testing"

	"dmp/internal/pipeline"
	"dmp/internal/sample"
)

// BenchmarkSampledRun measures the steady-state cost of a sampled simulation
// of the gzip corpus benchmark at the default SampleConf — the configuration
// every sampled evaluation gate runs at. The first (untimed) run primes the
// instruction-count memo, so iterations measure the config-sweep steady
// state: one chained stream, no discovery pass. Allocations per op are part
// of the benchgate contract: the stream must not accumulate per-interval
// garbage beyond the fixed machine + pipeline images.
func BenchmarkSampledRun(b *testing.B) {
	prog, input := compileBench(b, "gzip")
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()
	r, err := sample.Run(context.Background(), prog, input, cfg, sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sample.Run(context.Background(), prog, input, cfg, sc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(r.TotalInsts)*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}
