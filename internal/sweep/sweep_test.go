package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"dmp/internal/harness"
	"dmp/internal/pipeline"
	"dmp/internal/simcache"
	"dmp/internal/stats"
)

func testGrid(t *testing.T) *GridSpec {
	t.Helper()
	g := &GridSpec{Axes: []Axis{
		{Field: "ROBSize", Values: []string{"128", "512"}},
		{Field: "DMP", Values: []string{"false", "true"}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatalf("grid: %v", err)
	}
	return g
}

func testCorpus(t *testing.T) []Program {
	t.Helper()
	progs, err := FromBench([]string{"gzip", "mcf"}, 1)
	if err != nil {
		t.Fatalf("FromBench: %v", err)
	}
	return progs
}

const testMaxInsts = 30_000

func TestGridCells(t *testing.T) {
	g := testGrid(t)
	cells, err := g.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	// Last axis fastest.
	wantLabels := []string{
		"ROBSize=128 DMP=false", "ROBSize=128 DMP=true",
		"ROBSize=512 DMP=false", "ROBSize=512 DMP=true",
	}
	for i, c := range cells {
		if c.Label() != wantLabels[i] {
			t.Errorf("cell %d label %q, want %q", i, c.Label(), wantLabels[i])
		}
	}
	if cells[0].Config.ROBSize != 128 || cells[0].Config.DMP {
		t.Errorf("cell 0 config not overridden: %+v", cells[0].Config)
	}
	if cells[3].Config.ROBSize != 512 || !cells[3].Config.DMP {
		t.Errorf("cell 3 config not overridden")
	}
	// Non-axis fields keep base values.
	if cells[0].Config.FetchWidth != pipeline.DefaultConfig().FetchWidth {
		t.Errorf("cell 0 FetchWidth diverged from base")
	}
}

func TestSetFieldDiagnostics(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	if err := SetField(&cfg, "L2.SizeKB", "2048"); err != nil {
		t.Fatalf("nested path: %v", err)
	}
	if cfg.L2.SizeKB != 2048 {
		t.Fatalf("nested set did not apply")
	}
	if err := SetField(&cfg, "RobSize", "128"); err == nil {
		t.Fatal("typo field accepted")
	} else if !strings.Contains(err.Error(), "RobSize") || !strings.Contains(err.Error(), "ROBSize") {
		t.Fatalf("diagnostic %q should name the typo and list valid fields", err)
	}
	if err := SetField(&cfg, "ROBSize", "lots"); err == nil {
		t.Fatal("non-integer value accepted")
	} else if !strings.Contains(err.Error(), "ROBSize") {
		t.Fatalf("diagnostic %q should name the axis", err)
	}
	if err := SetField(&cfg, "DMP", "128"); err == nil {
		t.Fatal("non-bool value accepted for bool field")
	}
}

func TestGridRejectsInvalidCell(t *testing.T) {
	g := &GridSpec{Axes: []Axis{{Field: "BTBEntries", Values: []string{"4096", "3000"}}}}
	err := g.Validate()
	if err == nil {
		t.Fatal("grid with non-power-of-two BTBEntries cell validated")
	}
	if !strings.Contains(err.Error(), "BTBEntries=3000") || !strings.Contains(err.Error(), "BTBEntries") {
		t.Fatalf("diagnostic %q should name the cell and the field", err)
	}
}

// TestCSVGoldenRow pins the CSV contract: column order and deterministic
// formatting. Downstream tooling parses these files; a drive-by column
// reorder must fail a test, not a user.
func TestCSVGoldenRow(t *testing.T) {
	axes := []Axis{
		{Field: "ROBSize", Values: []string{"128"}},
		{Field: "DMP", Values: []string{"true"}},
	}
	row := &Row{
		Program:      "gzip",
		Preset:       "",
		Idiom:        "",
		Cell:         "ROBSize=128 DMP=true",
		Coord:        []stats.KV{{Key: "ROBSize", Value: "128"}, {Key: "DMP", Value: "true"}},
		IPC:          1.2345678,
		Cycles:       81004,
		Retired:      100000,
		MPKI:         12.5,
		FlushesPerKI: 10.25,
		DpredEntries: 42,
	}
	var buf bytes.Buffer
	cw := NewCSVWriter(&buf)
	if err := cw.WriteRow(axes, row); err != nil {
		t.Fatalf("WriteRow: %v", err)
	}
	want := "program,preset,idiom,ROBSize,DMP,ipc,ipc_err,cycles,retired,mpki,flushes_per_ki,dpred_entries,sampled\n" +
		"gzip,,,128,true,1.234568,0.000000,81004,100000,12.500000,10.250000,42,false\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden row mismatch:\ngot:  %q\nwant: %q", got, want)
	}
}

func TestSweepRunAndResume(t *testing.T) {
	g := testGrid(t)
	progs := testCorpus(t)
	cache := simcache.New("")
	var buf bytes.Buffer
	opts := Options{
		MaxInsts: testMaxInsts,
		Cache:    cache,
		RowOut:   NewCSVWriter(&buf),
	}
	rep, err := Run(context.Background(), progs, g, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rep.Rows))
	}
	if rep.Skipped != 0 {
		t.Fatalf("fresh run skipped %d cells", rep.Skipped)
	}
	for _, r := range rep.Rows {
		if r.Retired == 0 || r.IPC <= 0 {
			t.Fatalf("row %s/%s degenerate: %+v", r.Program, r.Cell, r)
		}
	}
	// The report row order is deterministic: program order, then cell order.
	if rep.Rows[0].Program != "gzip" || rep.Rows[0].Cell != "ROBSize=128 DMP=false" {
		t.Fatalf("row 0 is %s/%s, want gzip first cell", rep.Rows[0].Program, rep.Rows[0].Cell)
	}
	// Marginals and Best are populated.
	if len(rep.Marginals) != 4 {
		t.Fatalf("got %d marginal levels, want 4 (2 axes x 2 levels)", len(rep.Marginals))
	}
	if len(rep.Best) != 2 {
		t.Fatalf("got %d best groups, want 2", len(rep.Best))
	}

	// Resume: the CSV we streamed marks every cell done; a resumed run
	// skips all of them and re-simulates nothing.
	done, err := ReadDone(bytes.NewReader(buf.Bytes()), g.Axes)
	if err != nil {
		t.Fatalf("ReadDone: %v", err)
	}
	if len(done) != 8 {
		t.Fatalf("resume set has %d entries, want 8", len(done))
	}
	opts2 := Options{MaxInsts: testMaxInsts, Cache: cache, Skip: done.Contains}
	rep2, err := Run(context.Background(), progs, g, opts2)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if len(rep2.Rows) != 0 || rep2.Skipped != 8 {
		t.Fatalf("resumed run produced %d rows, skipped %d; want 0/8", len(rep2.Rows), rep2.Skipped)
	}

	// Partial resume: drop the last CSV row; exactly one cell re-runs.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	partial := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	done3, err := ReadDone(strings.NewReader(partial), g.Axes)
	if err != nil {
		t.Fatalf("ReadDone(partial): %v", err)
	}
	rep3, err := Run(context.Background(), progs, g, Options{MaxInsts: testMaxInsts, Cache: cache, Skip: done3.Contains})
	if err != nil {
		t.Fatalf("partial resumed Run: %v", err)
	}
	if len(rep3.Rows) != 1 || rep3.Skipped != 7 {
		t.Fatalf("partial resume produced %d rows, skipped %d; want 1/7", len(rep3.Rows), rep3.Skipped)
	}
}

// TestSweepMatchesColdRun is the byte-identical check: a cell's stats from
// the sweep engine (shared artifacts, memoized) must equal a cold
// single-config run of the same program and configuration.
func TestSweepMatchesColdRun(t *testing.T) {
	g := testGrid(t)
	progs := testCorpus(t)
	rep, err := Run(context.Background(), progs, g, Options{MaxInsts: testMaxInsts, Cache: simcache.New("")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cells, _ := g.Cells()
	for _, spot := range []int{0, 3, 5} { // gzip first/last cell, mcf second cell
		row := rep.Rows[spot]
		cell := cells[spot%len(cells)]
		prep, err := prepare(context.Background(), progs[spot/len(cells)], "heur", harness.EvalOptions{MaxInsts: testMaxInsts})
		if err != nil {
			t.Fatalf("cold prepare: %v", err)
		}
		cfg := cell.Config
		cfg.MaxInsts = testMaxInsts
		prog := prep.Bare
		if cfg.DMP {
			prog = prep.Annotated
		}
		cold, err := pipeline.Run(prog, progs[spot/len(cells)].RunInput, cfg)
		if err != nil {
			t.Fatalf("cold run: %v", err)
		}
		gotJSON, _ := pipeline.MarshalStats(row.Stats)
		wantJSON, _ := pipeline.MarshalStats(cold)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("row %s/%s stats differ from cold run:\nsweep: %s\ncold:  %s",
				row.Program, row.Cell, gotJSON, wantJSON)
		}
	}
}

// TestSweepNaiveMatches checks the A/B baseline produces identical rows —
// the speedup comparison is only honest if both modes compute the same
// answer.
func TestSweepNaiveMatches(t *testing.T) {
	g := &GridSpec{Axes: []Axis{{Field: "DMP", Values: []string{"false", "true"}}}}
	progs := testCorpus(t)[:1]
	fast, err := Run(context.Background(), progs, g, Options{MaxInsts: testMaxInsts, Cache: simcache.New("")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	naive, err := Run(context.Background(), progs, g, Options{MaxInsts: testMaxInsts, Naive: true})
	if err != nil {
		t.Fatalf("naive Run: %v", err)
	}
	if len(fast.Rows) != len(naive.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(fast.Rows), len(naive.Rows))
	}
	for i := range fast.Rows {
		a, _ := pipeline.MarshalStats(fast.Rows[i].Stats)
		b, _ := pipeline.MarshalStats(naive.Rows[i].Stats)
		if !bytes.Equal(a, b) {
			t.Fatalf("row %d stats differ between reuse and naive mode", i)
		}
	}
}

// TestSweepCancelMidGrid proves a cancelled sweep leaves well-formed partial
// output and no torn simcache entries: the CSV parses, every written row is
// complete, and re-running against the same cache matches a fresh
// from-scratch run byte for byte.
func TestSweepCancelMidGrid(t *testing.T) {
	g := testGrid(t)
	progs := testCorpus(t)
	cache := simcache.New("")
	var buf bytes.Buffer

	ctx, cancel := context.WithCancel(context.Background())
	var fired bool
	opts := Options{
		MaxInsts: testMaxInsts,
		Cache:    cache,
		RowOut:   NewCSVWriter(&buf),
		Progress: func(done, skipped, total int) {
			if done >= 2 && !fired {
				fired = true
				cancel()
			}
		},
	}
	if _, err := Run(ctx, progs, g, opts); err == nil {
		t.Fatal("cancelled Run returned nil error")
	}

	// Partial CSV is well-formed: parses, and every record has the full
	// column count (csv.Reader enforces per-record field counts).
	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("partial CSV does not parse: %v", err)
	}
	if len(recs) < 1 {
		t.Fatal("no header in partial CSV")
	}
	for i, rec := range recs {
		if len(rec) != len(Header(g.Axes)) {
			t.Fatalf("record %d has %d fields, want %d", i, len(rec), len(Header(g.Axes)))
		}
	}

	// No torn simcache entries: a completed run against the same cache must
	// be byte-identical to a run against a fresh cache.
	resumed, err := Run(context.Background(), progs, g, Options{MaxInsts: testMaxInsts, Cache: cache})
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	fresh, err := Run(context.Background(), progs, g, Options{MaxInsts: testMaxInsts, Cache: simcache.New("")})
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	if len(resumed.Rows) != len(fresh.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(resumed.Rows), len(fresh.Rows))
	}
	for i := range fresh.Rows {
		a, _ := pipeline.MarshalStats(resumed.Rows[i].Stats)
		b, _ := pipeline.MarshalStats(fresh.Rows[i].Stats)
		if !bytes.Equal(a, b) {
			t.Fatalf("row %d differs after cancel+resume: torn cache entry?", i)
		}
	}
}

func TestReadDoneRejectsMismatchedHeader(t *testing.T) {
	axes := []Axis{{Field: "ROBSize", Values: []string{"128"}}}
	other := "program,preset,idiom,FetchWidth,ipc,ipc_err,cycles,retired,mpki,flushes_per_ki,dpred_entries,sampled\n"
	if _, err := ReadDone(strings.NewReader(other), axes); err == nil {
		t.Fatal("mismatched header accepted for resume")
	}
}

func TestAxisMarginals(t *testing.T) {
	points := []stats.SweepPoint{
		{Group: "a", Coord: []stats.KV{{Key: "ROB", Value: "128"}}, Value: 1.0},
		{Group: "a", Coord: []stats.KV{{Key: "ROB", Value: "512"}}, Value: 1.5},
		{Group: "b", Coord: []stats.KV{{Key: "ROB", Value: "128"}}, Value: 2.0},
		{Group: "b", Coord: []stats.KV{{Key: "ROB", Value: "512"}}, Value: 2.5},
	}
	ms := stats.AxisMarginals(points)
	if len(ms) != 2 {
		t.Fatalf("got %d levels, want 2", len(ms))
	}
	if ms[0].Level != "128" || ms[0].Mean != 1.5 || ms[0].DeltaPct != 0 {
		t.Fatalf("level 128: %+v", ms[0])
	}
	if ms[1].Level != "512" || ms[1].Mean != 2.0 {
		t.Fatalf("level 512: %+v", ms[1])
	}
	wantDelta := (2.0/1.5 - 1) * 100
	if d := ms[1].DeltaPct - wantDelta; d > 1e-9 || d < -1e-9 {
		t.Fatalf("delta %.4f, want %.4f", ms[1].DeltaPct, wantDelta)
	}
	best := stats.BestPerGroup(points)
	if len(best) != 2 || best[0].Group != "a" || best[0].Value != 1.5 || best[0].N != 2 {
		t.Fatalf("best: %+v", best)
	}
}
