package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
)

// CSV layout: the fixed identity columns, one column per swept axis (in grid
// order), then the fixed metric columns. Column order and float formatting
// are pinned by TestCSVGoldenRow — downstream tooling parses these files.
var (
	csvIdentityCols = []string{"program", "preset", "idiom"}
	csvMetricCols   = []string{"ipc", "ipc_err", "cycles", "retired", "mpki", "flushes_per_ki", "dpred_entries", "sampled"}
)

// Header returns the CSV header row for a grid's axes.
func Header(axes []Axis) []string {
	cols := append([]string{}, csvIdentityCols...)
	for _, ax := range axes {
		cols = append(cols, ax.Field)
	}
	return append(cols, csvMetricCols...)
}

// formatFloat renders metrics deterministically: fixed six decimal places,
// no exponent form, so identical stats always produce byte-identical rows.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// rowRecord renders one row in Header order.
func rowRecord(axes []Axis, r *Row) ([]string, error) {
	rec := []string{r.Program, r.Preset, r.Idiom}
	for i, ax := range axes {
		if i >= len(r.Coord) || r.Coord[i].Key != ax.Field {
			return nil, fmt.Errorf("sweep: row %s/%s coordinate does not match grid axes", r.Program, r.Cell)
		}
		rec = append(rec, r.Coord[i].Value)
	}
	return append(rec,
		formatFloat(r.IPC),
		formatFloat(r.IPCErr),
		strconv.FormatInt(r.Cycles, 10),
		strconv.FormatUint(r.Retired, 10),
		formatFloat(r.MPKI),
		formatFloat(r.FlushesPerKI),
		strconv.FormatUint(r.DpredEntries, 10),
		strconv.FormatBool(r.Sampled),
	), nil
}

// CSVWriter streams rows as they complete: each WriteRow appends one full
// record and flushes, under a mutex, so a cancelled or crashed sweep leaves
// a well-formed file of exactly the rows that finished.
type CSVWriter struct {
	mu          sync.Mutex
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVWriter wraps w. The header is written lazily with the first row (its
// axis columns come from the grid the rows belong to).
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// WriteRow appends one row (writing the header first if none has been).
func (cw *CSVWriter) WriteRow(axes []Axis, r *Row) error {
	rec, err := rowRecord(axes, r)
	if err != nil {
		return err
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if !cw.wroteHeader {
		if err := cw.w.Write(Header(axes)); err != nil {
			return err
		}
		cw.wroteHeader = true
	}
	if err := cw.w.Write(rec); err != nil {
		return err
	}
	cw.w.Flush()
	return cw.w.Error()
}

// WriteHeader writes the header immediately (used when creating a fresh
// output file, so even a zero-row run leaves a parseable file).
func (cw *CSVWriter) WriteHeader(axes []Axis) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.wroteHeader {
		return nil
	}
	if err := cw.w.Write(Header(axes)); err != nil {
		return err
	}
	cw.wroteHeader = true
	cw.w.Flush()
	return cw.w.Error()
}

// MarkHeaderWritten records that the underlying file already carries a header
// (the resume-append case), so WriteRow will not emit a second one.
func (cw *CSVWriter) MarkHeaderWritten() {
	cw.mu.Lock()
	cw.wroteHeader = true
	cw.mu.Unlock()
}

// DoneSet is the resume bookkeeping read back from an existing CSV: the set
// of (program, cell label) pairs already measured.
type DoneSet map[string]bool

func doneKey(program, cell string) string { return program + "|" + cell }

// Contains reports whether the pair is already done (the Options.Skip form).
func (d DoneSet) Contains(program, cell string) bool { return d[doneKey(program, cell)] }

// ReadDone parses an existing sweep CSV for resume. The header must match
// the grid exactly — same axes, same order — otherwise the file belongs to a
// different sweep and resuming into it would interleave incompatible rows.
// Rows are keyed by (program, cell label); trailing partial lines cannot
// occur because WriteRow flushes whole records.
func ReadDone(r io.Reader, axes []Axis) (DoneSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header(axes))
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sweep: resume: %w", err)
	}
	if len(recs) == 0 {
		return DoneSet{}, nil
	}
	want := Header(axes)
	if got := recs[0]; strings.Join(got, ",") != strings.Join(want, ",") {
		return nil, fmt.Errorf("sweep: resume: existing header %v does not match grid %v; "+
			"the file belongs to a different sweep", got, want)
	}
	done := DoneSet{}
	for _, rec := range recs[1:] {
		parts := make([]string, len(axes))
		for i, ax := range axes {
			parts[i] = ax.Field + "=" + rec[len(csvIdentityCols)+i]
		}
		done[doneKey(rec[0], strings.Join(parts, " "))] = true
	}
	return done, nil
}

// ReadDoneFile is ReadDone over a file path; a missing file is an empty set.
func ReadDoneFile(path string, axes []Axis) (DoneSet, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return DoneSet{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDone(f, axes)
}

// WriteJSON writes the full report.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Render writes the human-readable summary: per-axis IPC marginals and the
// best cell per group.
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "sweep: %d programs x %d cells, %d rows (%d skipped), selection %s\n",
		len(rep.Programs), rep.Cells, len(rep.Rows), rep.Skipped, rep.Algo)
	if len(rep.Marginals) > 0 {
		fmt.Fprintf(w, "%-18s%-10s%6s%10s%10s%10s\n", "axis", "value", "n", "meanIPC", "geoIPC", "delta%")
		prev := ""
		for _, m := range rep.Marginals {
			axis := m.Axis
			if axis == prev {
				axis = ""
			} else {
				prev = m.Axis
			}
			fmt.Fprintf(w, "%-18s%-10s%6d%10.4f%10.4f%+10.2f\n", axis, m.Level, m.N, m.Mean, m.Geo, m.DeltaPct)
		}
	}
	if len(rep.Best) > 0 {
		fmt.Fprintf(w, "best cell per group:\n")
		for _, b := range rep.Best {
			parts := make([]string, len(b.Coord))
			for i, kv := range b.Coord {
				parts[i] = kv.Key + "=" + kv.Value
			}
			fmt.Fprintf(w, "  %-16s IPC %.4f at %s (over %d cells)\n", b.Group, b.Value, strings.Join(parts, " "), b.N)
		}
	}
}
