package sweep

import (
	"context"
	"fmt"
	"sync"

	"dmp/internal/bench"
	"dmp/internal/gen"
	"dmp/internal/harness"
	"dmp/internal/pipeline"
	"dmp/internal/sample"
	"dmp/internal/simcache"
	"dmp/internal/stats"
	"dmp/internal/workpool"
)

// Program is one corpus unit: a DML source plus its input tapes and
// attribution labels. FromBench and FromGen adapt the two corpora.
type Program struct {
	Name       string
	Preset     string
	Idiom      string
	Source     string
	RunInput   []int64
	TrainInput []int64
}

// FromBench builds the corpus from hand-written benchmarks (nil names = all
// 17) at the given input scale.
func FromBench(names []string, scale int) ([]Program, error) {
	if scale <= 0 {
		scale = 1
	}
	var bs []*bench.Benchmark
	if len(names) == 0 {
		bs = bench.All()
	} else {
		for _, name := range names {
			b := bench.ByName(name)
			if b == nil {
				return nil, fmt.Errorf("sweep: unknown benchmark %q", name)
			}
			bs = append(bs, b)
		}
	}
	out := make([]Program, len(bs))
	for i, b := range bs {
		out[i] = Program{
			Name:       b.Name,
			Source:     b.Source,
			RunInput:   b.Input(bench.RunInput, scale),
			TrainInput: b.Input(bench.TrainInput, scale),
		}
	}
	return out, nil
}

// FromGen adapts a generated corpus.
func FromGen(progs []*gen.Program) []Program {
	out := make([]Program, len(progs))
	for i, p := range progs {
		out[i] = Program{
			Name:       p.Name,
			Preset:     p.Preset,
			Idiom:      p.Idiom,
			Source:     p.Source,
			RunInput:   p.RunInput,
			TrainInput: p.TrainInput,
		}
	}
	return out
}

// Options configures a sweep run.
type Options struct {
	// Parallelism bounds concurrent work (0 = GOMAXPROCS); the engine still
	// shares the process-wide workpool helper budget.
	Parallelism int
	// Algo is the selection algorithm annotating each program ("heur" when
	// empty; see harness.Algos).
	Algo string
	// MaxInsts caps simulated instructions per cell run and bounds the
	// profiling phase (it is also applied to every cell config, so a grid
	// cell cannot silently run unbounded).
	MaxInsts uint64
	// Cache memoizes cell simulations (nil = run uncached). Config
	// participates in keys via AppendCanonical, so each cell hits or misses
	// independently, and a re-run sweep is almost entirely cache hits.
	Cache *simcache.Cache
	// Sample routes cell simulations through the SMARTS sampled executor
	// when Enabled, making thousand-cell grids tractable.
	Sample sample.SampleConf
	// Naive disables phase-level artifact reuse: every (program, cell) pair
	// re-runs compile → profile → select → verify with a fresh private
	// simcache, mirroring a loop of independent single-config invocations.
	// It exists as the honest same-host baseline for the reuse speedup.
	Naive bool
	// Skip, when non-nil, elides cells whose (program name, cell label) it
	// reports true for — the resume filter. Skipped cells produce no row.
	Skip func(program, cell string) bool
	// RowOut, when non-nil, receives every completed row immediately
	// (streaming, cancel-safe). The report accumulates rows regardless.
	RowOut *CSVWriter
	// Progress, when non-nil, is called after every completed or skipped
	// cell with running counts.
	Progress func(done, skipped, total int)
}

// Row is one (program, cell) measurement.
type Row struct {
	Program string     `json:"program"`
	Preset  string     `json:"preset,omitempty"`
	Idiom   string     `json:"idiom,omitempty"`
	Cell    string     `json:"cell"`
	Coord   []stats.KV `json:"coord"`
	IPC     float64    `json:"ipc"`
	// IPCErr is the confidence-interval half-width of a sampled estimate
	// (0 for full-fidelity runs).
	IPCErr       float64 `json:"ipc_err,omitempty"`
	Cycles       int64   `json:"cycles"`
	Retired      uint64  `json:"retired"`
	MPKI         float64 `json:"mpki"`
	FlushesPerKI float64 `json:"flushes_per_ki"`
	DpredEntries uint64  `json:"dpred_entries"`
	Sampled      bool    `json:"sampled,omitempty"`
	// Stats is the full statistics record, carried in the JSON report so a
	// row answers any follow-up question without re-running the cell.
	Stats pipeline.Stats `json:"stats"`
}

// Report is the full sweep outcome.
type Report struct {
	Algo     string   `json:"algo"`
	Axes     []Axis   `json:"axes"`
	Programs []string `json:"programs"`
	Cells    int      `json:"cells"`
	Skipped  int      `json:"skipped"`
	Sampled  bool     `json:"sampled,omitempty"`
	// Rows holds completed rows in deterministic (program, cell) order.
	Rows []Row `json:"rows"`
	// Marginals is the per-axis IPC aggregation (stats.AxisMarginals) and
	// Best the winning cell per group — idiom when the corpus carries idiom
	// attribution, program name otherwise.
	Marginals []stats.AxisLevel `json:"marginals"`
	Best      []stats.GroupBest `json:"best"`
}

// Run evaluates the corpus × grid product. Per program, the config-invariant
// phases run once (harness.PrepareSource); cells fan out over the workpool
// and complete in arbitrary order (RowOut sees completion order; the
// report's Rows are deterministic). A cancelled context aborts at the next
// phase/cell boundary; completed rows remain valid, in-flight simulations
// are never memoized (the simcache contract), so a resumed sweep recomputes
// exactly the missing cells.
func Run(ctx context.Context, progs []Program, grid *GridSpec, opts Options) (*Report, error) {
	cells, err := grid.Cells()
	if err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("sweep: empty corpus")
	}
	if opts.Algo == "" {
		opts.Algo = "heur"
	}
	if !harness.KnownAlgo(opts.Algo) {
		return nil, fmt.Errorf("sweep: unknown selection algorithm %q (valid: %v)", opts.Algo, harness.Algos())
	}

	rep := &Report{
		Algo:    opts.Algo,
		Axes:    grid.Axes,
		Cells:   len(cells),
		Sampled: opts.Sample.Enabled,
	}
	for _, p := range progs {
		rep.Programs = append(rep.Programs, p.Name)
	}

	// rows[programIdx*len(cells)+cellIdx]; nil = skipped or failed.
	rows := make([]*Row, len(progs)*len(cells))
	var mu sync.Mutex
	var done, skipped int
	emit := func(slot int, r *Row, skip bool) error {
		mu.Lock()
		defer mu.Unlock()
		if skip {
			skipped++
		} else {
			rows[slot] = r
			done++
		}
		if opts.Progress != nil {
			opts.Progress(done, skipped, len(progs)*len(cells))
		}
		if r != nil && opts.RowOut != nil {
			return opts.RowOut.WriteRow(grid.Axes, r)
		}
		return nil
	}

	evalOpts := harness.EvalOptions{Cache: opts.Cache, MaxInsts: opts.MaxInsts, Sample: opts.Sample}

	if opts.Naive {
		err = runNaive(ctx, progs, cells, opts, emit)
	} else {
		err = workpool.RunIndexed(ctx, len(progs), opts.Parallelism,
			func(i int) string { return progs[i].Name }, nil, func(pi int) error {
				p := progs[pi]
				todo := pendingCells(p, cells, opts, func(ci int) error { return emit(pi*len(cells)+ci, nil, true) })
				if len(todo) == 0 {
					return nil
				}
				prep, err := prepare(ctx, p, opts.Algo, evalOpts)
				if err != nil {
					return fmt.Errorf("%s: %w", p.Name, err)
				}
				return workpool.RunIndexed(ctx, len(todo), opts.Parallelism,
					func(i int) string { return p.Name + " " + cells[todo[i]].Label() }, nil, func(ti int) error {
						ci := todo[ti]
						row, err := simulateCell(ctx, prep, p, cells[ci], evalOpts)
						if err != nil {
							return fmt.Errorf("%s %s: %w", p.Name, cells[ci].Label(), err)
						}
						return emit(pi*len(cells)+ci, row, false)
					})
			})
	}
	if err != nil {
		return nil, err
	}

	rep.Skipped = skipped
	for _, r := range rows {
		if r != nil {
			rep.Rows = append(rep.Rows, *r)
		}
	}
	rep.aggregate()
	return rep, nil
}

// pendingCells applies the skip filter, reporting skips through onSkip.
func pendingCells(p Program, cells []Cell, opts Options, onSkip func(int) error) []int {
	todo := make([]int, 0, len(cells))
	for ci, c := range cells {
		if opts.Skip != nil && opts.Skip(p.Name, c.Label()) {
			_ = onSkip(ci)
			continue
		}
		todo = append(todo, ci)
	}
	return todo
}

// runNaive is the reuse-free baseline: every (program, cell) pair prepares
// from scratch with a private cache, exactly like looping a single-config
// tool over the grid.
func runNaive(ctx context.Context, progs []Program, cells []Cell, opts Options, emit func(int, *Row, bool) error) error {
	type task struct{ pi, ci int }
	var tasks []task
	for pi, p := range progs {
		for ci, c := range cells {
			if opts.Skip != nil && opts.Skip(p.Name, c.Label()) {
				if err := emit(pi*len(cells)+ci, nil, true); err != nil {
					return err
				}
				continue
			}
			tasks = append(tasks, task{pi, ci})
		}
	}
	return workpool.RunIndexed(ctx, len(tasks), opts.Parallelism,
		func(i int) string { return progs[tasks[i].pi].Name + " " + cells[tasks[i].ci].Label() },
		nil, func(ti int) error {
			p, c := progs[tasks[ti].pi], cells[tasks[ti].ci]
			evalOpts := harness.EvalOptions{Cache: simcache.New(""), MaxInsts: opts.MaxInsts, Sample: opts.Sample}
			prep, err := prepare(ctx, p, opts.Algo, evalOpts)
			if err != nil {
				return fmt.Errorf("%s: %w", p.Name, err)
			}
			row, err := simulateCell(ctx, prep, p, c, evalOpts)
			if err != nil {
				return fmt.Errorf("%s %s: %w", p.Name, c.Label(), err)
			}
			return emit(tasks[ti].pi*len(cells)+tasks[ti].ci, row, false)
		})
}

func prepare(ctx context.Context, p Program, algo string, opts harness.EvalOptions) (*harness.Prepared, error) {
	prep, err := harness.PrepareSource(ctx, p.Name, p.Source, p.RunInput, p.TrainInput, algo, opts)
	if err != nil {
		return nil, err
	}
	prep.Preset, prep.Idiom = p.Preset, p.Idiom
	return prep, nil
}

// simulateCell runs the per-cell phase and shapes the row. The cell's config
// is used as-is except for MaxInsts, which the sweep applies globally.
func simulateCell(ctx context.Context, prep *harness.Prepared, p Program, c Cell, opts harness.EvalOptions) (*Row, error) {
	cfg := c.Config
	if opts.MaxInsts != 0 && cfg.MaxInsts == 0 {
		cfg.MaxInsts = opts.MaxInsts
	}
	st, err := prep.Simulate(ctx, cfg, opts)
	if err != nil {
		return nil, err
	}
	row := &Row{
		Program:      p.Name,
		Preset:       p.Preset,
		Idiom:        p.Idiom,
		Cell:         c.Label(),
		Coord:        c.Coord,
		IPC:          st.IPC(),
		Cycles:       st.Cycles,
		Retired:      st.Retired,
		MPKI:         st.MPKI(),
		FlushesPerKI: st.FlushesPerKI(),
		DpredEntries: st.DpredEntries,
		Sampled:      opts.Sample.Enabled,
		Stats:        st,
	}
	return row, nil
}

// aggregate computes the cross-cell views: per-axis IPC marginals and the
// best cell per group (idiom when available, else program).
func (rep *Report) aggregate() {
	points := make([]stats.SweepPoint, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		group := r.Idiom
		if group == "" {
			group = r.Program
		}
		points = append(points, stats.SweepPoint{Group: group, Coord: r.Coord, Value: r.IPC})
	}
	rep.Marginals = stats.AxisMarginals(points)
	rep.Best = stats.BestPerGroup(points)
}
