package sweep

import (
	"context"
	"testing"

	"dmp/internal/simcache"
)

// BenchmarkSweepGrid measures the sweep engine's phase-reuse path: one
// program across an 8-cell ROB x DMP grid, fresh cache per iteration so the
// number reflects real per-cell simulation plus the once-per-program prepare,
// not pure memoization.
func BenchmarkSweepGrid(b *testing.B) {
	progs, err := FromBench([]string{"gzip"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	grid := &GridSpec{Axes: []Axis{
		{Field: "ROBSize", Values: []string{"128", "256", "512", "1024"}},
		{Field: "DMP", Values: []string{"false", "true"}},
	}}
	if err := grid.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(context.Background(), progs, grid,
			Options{MaxInsts: 50_000, Cache: simcache.New("")})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 8 {
			b.Fatalf("got %d rows, want 8", len(rep.Rows))
		}
	}
}
