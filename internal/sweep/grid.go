// Package sweep is the parallel machine-configuration sweep engine: it
// evaluates a corpus of programs against a grid of pipeline.Config points and
// emits machine-readable rows (CSV for streaming/resume, JSON for the full
// report). The engine's perf core is phase-level artifact reuse: per program,
// the config-invariant phases (compile → profile → select → verify) run once
// via harness.PrepareSource, predecoded code and simcache program hashes are
// shared across every cell (both keyed by code-segment identity), and only
// the simulate phase fans out per cell over the process-wide workpool, with
// per-cell memoization through internal/simcache. See DESIGN.md §17.
package sweep

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"dmp/internal/pipeline"
	"dmp/internal/stats"
)

// Axis is one swept dimension: a dotted field path into pipeline.Config
// ("ROBSize", "ConfThreshold", "L2.SizeKB", "DMP") and the values it takes.
// Values are strings — the forms they take on the command line, in grid JSON
// and in CSV columns — parsed against the field's kind when cells are built.
type Axis struct {
	Field  string   `json:"field"`
	Values []string `json:"values"`
}

// GridSpec is a serializable sweep grid: an optional base configuration
// (nil = pipeline.DefaultConfig) plus the swept axes. The cell set is the
// cartesian product of the axis values, last axis fastest.
type GridSpec struct {
	Base *pipeline.Config `json:"base,omitempty"`
	Axes []Axis           `json:"axes"`
}

// ParseAxis parses the command-line form "Field=v1,v2,...".
func ParseAxis(s string) (Axis, error) {
	field, vals, ok := strings.Cut(s, "=")
	if !ok || field == "" || vals == "" {
		return Axis{}, fmt.Errorf("axis %q: want Field=v1,v2,...", s)
	}
	ax := Axis{Field: strings.TrimSpace(field)}
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return Axis{}, fmt.Errorf("axis %q: empty value", s)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// Cell is one grid point: its index in cell order, its coordinate (one KV
// per axis, in axis order) and the fully overridden configuration.
type Cell struct {
	Index  int
	Coord  []stats.KV
	Config pipeline.Config
}

// Label renders the coordinate as "ROBSize=128 DMP=true" (axis order). It is
// the cell's identity for resume bookkeeping and error messages.
func (c Cell) Label() string {
	parts := make([]string, len(c.Coord))
	for i, kv := range c.Coord {
		parts[i] = kv.Key + "=" + kv.Value
	}
	return strings.Join(parts, " ")
}

// Validate checks the grid shape: at least one axis value per axis, no
// duplicate fields, every field resolvable, every value parseable, and every
// resulting cell config valid. It surfaces the first bad cell with its
// coordinate so a user fixes the axis, not a mid-grid stack trace.
func (g *GridSpec) Validate() error {
	if len(g.Axes) == 0 {
		return fmt.Errorf("sweep: grid has no axes")
	}
	seen := map[string]bool{}
	for _, ax := range g.Axes {
		if ax.Field == "" {
			return fmt.Errorf("sweep: axis with empty field")
		}
		if seen[ax.Field] {
			return fmt.Errorf("sweep: axis %s listed twice", ax.Field)
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %s has no values", ax.Field)
		}
	}
	_, err := g.Cells()
	return err
}

// base returns the grid's base configuration.
func (g *GridSpec) base() pipeline.Config {
	if g.Base != nil {
		return *g.Base
	}
	return pipeline.DefaultConfig()
}

// Cells expands the grid into the cartesian product of its axes, last axis
// fastest. Every cell's configuration is validated; an invalid cell fails
// with its coordinate and the named-field diagnostic from Config.Validate.
func (g *GridSpec) Cells() ([]Cell, error) {
	n := 1
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %s has no values", ax.Field)
		}
		n *= len(ax.Values)
	}
	cells := make([]Cell, 0, n)
	idx := make([]int, len(g.Axes))
	for i := 0; i < n; i++ {
		cfg := g.base()
		coord := make([]stats.KV, len(g.Axes))
		for a, ax := range g.Axes {
			v := ax.Values[idx[a]]
			coord[a] = stats.KV{Key: ax.Field, Value: v}
			if err := SetField(&cfg, ax.Field, v); err != nil {
				return nil, err
			}
		}
		cell := Cell{Index: i, Coord: coord, Config: cfg}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", cell.Label(), err)
		}
		cells = append(cells, cell)
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(g.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return cells, nil
}

// SetField assigns the string value to the dotted field path of cfg,
// parsing it against the field's kind. Unknown paths fail with the list of
// valid fields so an axis typo is a one-line fix.
func SetField(cfg *pipeline.Config, path, value string) error {
	v := reflect.ValueOf(cfg).Elem()
	for _, part := range strings.Split(path, ".") {
		if v.Kind() != reflect.Struct {
			return fmt.Errorf("sweep: axis %s: %s is not a struct", path, v.Type())
		}
		f := v.FieldByName(part)
		if !f.IsValid() {
			return fmt.Errorf("sweep: axis %s: no Config field %q (valid: %s)",
				path, part, strings.Join(FieldPaths(), ", "))
		}
		v = f
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("sweep: axis %s: %q is not an integer", path, value)
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("sweep: axis %s: %q is not a non-negative integer", path, value)
		}
		if v.OverflowUint(n) {
			return fmt.Errorf("sweep: axis %s: %q overflows %s", path, value, v.Type())
		}
		v.SetUint(n)
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("sweep: axis %s: %q is not a bool", path, value)
		}
		v.SetBool(b)
	default:
		return fmt.Errorf("sweep: axis %s: field kind %s is not sweepable", path, v.Kind())
	}
	return nil
}

// FieldPaths returns every sweepable Config field path (scalar fields, plus
// dotted paths into nested structs), sorted.
func FieldPaths() []string {
	var out []string
	var walk func(t reflect.Type, prefix string)
	walk = func(t reflect.Type, prefix string) {
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			switch f.Type.Kind() {
			case reflect.Struct:
				walk(f.Type, prefix+f.Name+".")
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
				reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
				reflect.Bool:
				out = append(out, prefix+f.Name)
			}
		}
	}
	walk(reflect.TypeOf(pipeline.Config{}), "")
	sort.Strings(out)
	return out
}
