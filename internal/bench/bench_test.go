package bench

import (
	"reflect"
	"testing"

	"dmp/internal/emu"
	"dmp/internal/profile"
)

func TestCorpusComplete(t *testing.T) {
	want := []string{
		"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk",
		"gap", "vortex", "bzip2", "twolf", "compress", "go", "ijpeg", "li",
		"m88ksim",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("corpus = %v, want %v", got, want)
	}
	if ByName("gzip") == nil || ByName("nonesuch") != nil {
		t.Error("ByName lookup broken")
	}
	for _, b := range All() {
		if b.Trait == "" {
			t.Errorf("%s: missing trait documentation", b.Name)
		}
	}
}

func TestAllCompileAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			for _, set := range []InputSet{RunInput, TrainInput} {
				input := b.Input(set, 1)
				if len(input) == 0 {
					t.Fatalf("%v input empty", set)
				}
				m := emu.New(prog, input, 0)
				if _, err := m.Run(80_000_000); err != nil {
					t.Fatalf("%v run: %v", set, err)
				}
				if len(m.Output) == 0 {
					t.Errorf("%v: no output", set)
				}
				if m.Retired < 50_000 {
					t.Errorf("%v: only %d dynamic instructions; too small to evaluate", set, m.Retired)
				}
				if m.Retired > 8_000_000 {
					t.Errorf("%v: %d dynamic instructions; too large for the harness", set, m.Retired)
				}
			}
		})
	}
}

func TestInputSetsDiffer(t *testing.T) {
	for _, b := range All() {
		run := b.Input(RunInput, 1)
		train := b.Input(TrainInput, 1)
		if reflect.DeepEqual(run, train) {
			t.Errorf("%s: run and train inputs identical", b.Name)
		}
	}
}

func TestInputDeterminism(t *testing.T) {
	for _, b := range All() {
		a := b.Input(RunInput, 1)
		c := b.Input(RunInput, 1)
		if !reflect.DeepEqual(a, c) {
			t.Errorf("%s: input generation not deterministic", b.Name)
		}
	}
}

func TestScaleGrowsInput(t *testing.T) {
	b := ByName("gzip")
	if len(b.Input(RunInput, 2)) <= len(b.Input(RunInput, 1)) {
		t.Error("scale did not grow the input")
	}
}

// TestMPKIOrdering checks that the corpus reproduces the coarse Table 2
// misprediction ordering: go is the most mispredicted, vortex/gap/m88ksim
// the least.
func TestMPKIOrdering(t *testing.T) {
	mpki := map[string]float64{}
	for _, name := range []string{"go", "gcc", "vortex", "gap", "m88ksim", "vpr"} {
		b := ByName(name)
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.Collect(prog, b.Input(RunInput, 1), profile.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mpki[name] = prof.MPKI()
	}
	if mpki["go"] < mpki["gcc"] || mpki["go"] < mpki["vpr"] {
		t.Errorf("go MPKI %v not the highest: %v", mpki["go"], mpki)
	}
	for _, low := range []string{"vortex", "gap", "m88ksim"} {
		if mpki[low] > mpki["vpr"] {
			t.Errorf("%s MPKI %v above vpr %v", low, mpki[low], mpki["vpr"])
		}
	}
}
