package bench

import (
	"testing"

	"dmp/internal/profile"
)

// paperMPKI holds Table 2's mispredictions per kilo-instruction.
var paperMPKI = map[string]float64{
	"gzip": 5.1, "vpr": 9.4, "gcc": 12.6, "mcf": 5.4, "crafty": 5.5,
	"parser": 8.3, "eon": 1.7, "perlbmk": 3.6, "gap": 1.0, "vortex": 1.0,
	"bzip2": 7.7, "twolf": 6.0, "compress": 5.2, "go": 23.0, "ijpeg": 4.5,
	"li": 5.9, "m88ksim": 1.3,
}

// TestMPKIWithinBand checks that every benchmark's misprediction rate lands
// within a factor of three of its Table 2 namesake — the corpus is a
// behavioural stand-in, not a cycle-exact clone, but the branch-behaviour
// landscape must resemble the paper's.
func TestMPKIWithinBand(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profile.Collect(prog, b.Input(RunInput, 1), profile.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := prof.MPKI()
			want := paperMPKI[b.Name]
			if got < want/3 || got > want*3 {
				t.Errorf("MPKI = %.2f, outside [%.2f, %.2f] (paper %.1f)",
					got, want/3, want*3, want)
			}
		})
	}
}
