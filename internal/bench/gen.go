package bench

// Random-DML program generation now lives in internal/gen: a microsmith-style
// ProgramBuilder with a configurable ProgramConf (idiom mix, branch-bias
// targets, loop trip distributions, size budgets) driven by math/rand/v2 PCG
// streams. This wrapper keeps the historical fuzz-seed entry point alive for
// internal/lang, internal/isa and internal/emu callers.
//
// Seed-compatibility note: the move from math/rand's per-call
// rand.NewSource to PCG (gen.ManifestVersion 1 → 2) changed the program a
// given seed produces. Fuzz corpora re-seed from scratch on every run, and
// simcache keys are content-addressed over the program text, so nothing
// persisted depends on the old mapping — but pinned (conf, seed) pairs must
// carry the manifest version (see internal/gen).

import "dmp/internal/gen"

// GenSource returns a random well-formed DML program for the seed, using the
// generator's default ("mixed") conf. The same seed always yields the same
// program.
func GenSource(seed int64) string {
	return gen.Build(gen.Default(), uint64(seed)).Source
}
