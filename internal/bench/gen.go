package bench

// Random-DML program generation, in the style of microsmith's random-Go
// generator: a seeded PRNG drives a grammar-directed builder that emits
// well-formed, terminating programs. The generator seeds the front-end fuzz
// corpora (internal/lang) and the encode/decode round-trip property tests
// (internal/isa) with structurally diverse programs beyond the hand-written
// 17-benchmark corpus.
//
// Generated programs are valid by construction:
//   - identifiers are unique per scope and never collide with keywords or
//     the in/inavail/out builtins;
//   - functions only call previously emitted functions (no recursion);
//   - loops iterate a fresh counter towards a small constant bound, and the
//     counter is excluded from the assignable set, so every program halts;
//   - array sizes are powers of two and every index expression is masked
//     with `& (size-1)`, so runs stay in bounds;
//   - division, remainder and shifts are safe by the language semantics
//     (x/0 == 0, shift counts masked to 63).

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenSource returns a random well-formed DML program for the seed. The same
// seed always yields the same program (the generator uses only the seeded
// PRNG — no global or cryptographic randomness).
func GenSource(seed int64) string {
	g := &generator{r: rand.New(rand.NewSource(seed))}
	return g.program()
}

type genFunc struct {
	name  string
	arity int
}

type generator struct {
	r  *rand.Rand
	sb strings.Builder

	globals    []string       // scalar globals (readable and assignable)
	arrays     map[string]int // array name -> power-of-two size
	arrayNames []string       // deterministic iteration order for arrays
	funcs      []genFunc      // previously emitted functions (callable)

	// Per-function state.
	readable   []string // in-scope locals and params
	assignable []string // readable minus loop counters
	nextLocal  int
	loopDepth  int
	budget     int // remaining statements for the current function
}

func (g *generator) printf(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

func (g *generator) program() string {
	// Globals.
	nScalars := 1 + g.r.Intn(3)
	for i := 0; i < nScalars; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.printf("var %s = %d;\n", name, g.r.Intn(41)-20)
	}
	g.arrays = map[string]int{}
	nArrays := 1 + g.r.Intn(2)
	for i := 0; i < nArrays; i++ {
		name := fmt.Sprintf("a%d", i)
		size := 8 << g.r.Intn(4) // 8..64
		g.arrays[name] = size
		g.arrayNames = append(g.arrayNames, name)
		g.printf("var %s[%d];\n", name, size)
	}
	g.printf("\n")

	// Helper functions.
	nFuncs := 1 + g.r.Intn(3)
	for i := 0; i < nFuncs; i++ {
		g.emitFunc(fmt.Sprintf("f%d", i), g.r.Intn(4))
	}
	g.emitMain()
	return g.sb.String()
}

func (g *generator) resetFunc(params []string) {
	g.readable = append([]string(nil), params...)
	g.assignable = append([]string(nil), params...)
	g.nextLocal = 0
	g.loopDepth = 0
}

func (g *generator) emitFunc(name string, arity int) {
	params := make([]string, arity)
	for i := range params {
		params[i] = fmt.Sprintf("p%d", i)
	}
	g.resetFunc(params)
	g.budget = 4 + g.r.Intn(8)
	g.printf("func %s(%s) {\n", name, strings.Join(params, ", "))
	g.block(1)
	g.printf("\treturn %s;\n}\n\n", g.expr(2))
	g.funcs = append(g.funcs, genFunc{name, arity})
}

func (g *generator) emitMain() {
	g.resetFunc(nil)
	g.budget = 8 + g.r.Intn(10)
	g.printf("func main() {\n")
	// Consume the input tape so generated programs exercise data-dependent
	// control flow when run.
	v := g.newLocal()
	g.printf("\twhile (inavail()) {\n")
	g.printf("\t\tvar %s = in();\n", v)
	g.readable = append(g.readable, v)
	g.assignable = append(g.assignable, v)
	g.loopDepth++
	g.block(2)
	g.loopDepth--
	g.printf("\t}\n")
	g.block(1)
	for _, name := range g.globals {
		g.printf("\tout(%s);\n", name)
	}
	g.printf("}\n")
}

func (g *generator) newLocal() string {
	name := fmt.Sprintf("v%d", g.nextLocal)
	g.nextLocal++
	return name
}

// block emits 1..n statements at the given indentation depth, restoring the
// enclosing scope afterwards.
func (g *generator) block(depth int) {
	savedRead, savedAssign := len(g.readable), len(g.assignable)
	n := 1 + g.r.Intn(3)
	for i := 0; i < n && g.budget > 0; i++ {
		g.budget--
		g.stmt(depth)
	}
	g.readable = g.readable[:savedRead]
	g.assignable = g.assignable[:savedAssign]
}

func (g *generator) indent(depth int) {
	for i := 0; i < depth; i++ {
		g.sb.WriteByte('\t')
	}
}

func (g *generator) stmt(depth int) {
	choice := g.r.Intn(10)
	if depth >= 4 && choice >= 4 {
		choice = g.r.Intn(4) // keep nesting shallow
	}
	switch choice {
	case 0: // var declaration
		name := g.newLocal()
		g.indent(depth)
		g.printf("var %s = %s;\n", name, g.expr(2))
		g.readable = append(g.readable, name)
		g.assignable = append(g.assignable, name)
	case 1, 2: // assignment to a scalar
		target := g.pickAssignable()
		op := [...]string{"=", "+=", "-="}[g.r.Intn(3)]
		g.indent(depth)
		g.printf("%s %s %s;\n", target, op, g.expr(2))
	case 3: // array store, index masked to stay in bounds
		name, size := g.pickArray()
		g.indent(depth)
		g.printf("%s[(%s) & %d] = %s;\n", name, g.expr(1), size-1, g.expr(2))
	case 4: // out
		g.indent(depth)
		g.printf("out(%s);\n", g.expr(2))
	case 5, 6: // if / if-else
		g.indent(depth)
		g.printf("if (%s) {\n", g.expr(2))
		g.block(depth + 1)
		if g.r.Intn(2) == 0 {
			g.indent(depth)
			g.printf("} else {\n")
			g.block(depth + 1)
		}
		g.indent(depth)
		g.printf("}\n")
	case 7: // bounded while loop over a fresh counter
		i := g.newLocal()
		g.readable = append(g.readable, i) // readable but NOT assignable
		bound := 2 + g.r.Intn(7)
		g.indent(depth)
		g.printf("var %s = 0;\n", i)
		g.indent(depth)
		g.printf("while (%s < %d) {\n", i, bound)
		g.loopDepth++
		g.block(depth + 1)
		if g.r.Intn(4) == 0 {
			// Only break here: a continue would skip the counter increment
			// below and the loop would never terminate.
			g.indent(depth + 1)
			g.printf("if (%s) { break; }\n", g.expr(1))
		}
		g.loopDepth--
		g.indent(depth + 1)
		g.printf("%s = %s + 1;\n", i, i)
		g.indent(depth)
		g.printf("}\n")
	case 8: // bounded for loop
		i := g.newLocal()
		bound := 2 + g.r.Intn(7)
		g.indent(depth)
		g.printf("for (var %s = 0; %s < %d; %s = %s + 1) {\n", i, i, bound, i, i)
		g.readable = append(g.readable, i)
		g.loopDepth++
		g.block(depth + 1)
		g.loopDepth--
		g.indent(depth)
		g.printf("}\n")
		// The counter is scoped to the loop header; drop it.
		g.readable = g.readable[:len(g.readable)-1]
	default: // expression statement: a call when possible
		g.indent(depth)
		g.printf("%s;\n", g.callOrExpr())
	}
}

func (g *generator) pickAssignable() string {
	pool := append(append([]string(nil), g.assignable...), g.globals...)
	return pool[g.r.Intn(len(pool))]
}

func (g *generator) pickArray() (string, int) {
	name := g.arrayNames[g.r.Intn(len(g.arrayNames))]
	return name, g.arrays[name]
}

func (g *generator) callOrExpr() string {
	if len(g.funcs) > 0 && g.r.Intn(2) == 0 {
		return g.call()
	}
	return g.expr(1)
}

func (g *generator) call() string {
	f := g.funcs[g.r.Intn(len(g.funcs))]
	args := make([]string, f.arity)
	for i := range args {
		args[i] = g.expr(1)
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
}

var binOps = [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", "<=", ">", ">=", "&&", "||"}

// expr emits a random expression with bounded depth.
func (g *generator) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		return g.atom()
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("(-%s)", g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(!%s)", g.expr(depth-1))
	case 2:
		if len(g.funcs) > 0 {
			return g.call()
		}
		fallthrough
	default:
		op := binOps[g.r.Intn(len(binOps))]
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	}
}

func (g *generator) atom() string {
	pool := 3
	if len(g.readable) > 0 {
		pool++
	}
	switch g.r.Intn(pool) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(201)-100)
	case 1:
		return g.globals[g.r.Intn(len(g.globals))]
	case 2:
		name, size := g.pickArray()
		idx := fmt.Sprintf("%d", g.r.Intn(size))
		if len(g.readable) > 0 && g.r.Intn(2) == 0 {
			idx = fmt.Sprintf("%s & %d", g.readable[g.r.Intn(len(g.readable))], size-1)
		}
		return fmt.Sprintf("%s[%s]", name, idx)
	default:
		return g.readable[g.r.Intn(len(g.readable))]
	}
}
