// Package bench provides the benchmark corpus: 17 DML programs standing in
// for the 12 SPEC CPU2000 + 5 SPEC95 integer benchmarks the paper evaluates,
// with two input sets each (run ≈ MinneSPEC reduced, train ≈ SPEC train).
//
// Each program is written to exhibit the control-flow trait the paper
// attributes to its namesake (see the Trait field): short mispredicted
// hammocks (vpr, mcf, twolf), frequently-hammocks with rare escapes (go,
// gcc, crafty), unpredictable-exit loops (parser, gzip), hammocks merging at
// returns (twolf, go), mostly-predictable code with low MPKI (vortex, gap,
// m88ksim, eon), and so on. Absolute instruction counts are scaled down from
// SPEC (hundreds of millions) to sub-millions so that the cycle-level
// simulator can run the whole evaluation quickly; the relative behaviours
// are what matter.
package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"dmp/internal/codegen"
	"dmp/internal/isa"
)

// InputSet selects the input tape family.
type InputSet int

const (
	// RunInput is the evaluation input set (MinneSPEC-reduced analogue).
	RunInput InputSet = iota
	// TrainInput is the profiling input set (SPEC train analogue).
	TrainInput
)

func (s InputSet) String() string {
	if s == TrainInput {
		return "train"
	}
	return "run"
}

// Benchmark is one corpus program.
type Benchmark struct {
	// Name matches the SPEC benchmark it stands in for.
	Name string
	// Trait documents the control-flow behaviour it reproduces.
	Trait string
	// Source is the DML program text.
	Source string
	// Input generates the input tape for a set at the given scale
	// (scale 1 is the default evaluation size).
	Input func(set InputSet, scale int) []int64

	compileOnce sync.Once
	prog        *isa.Program
	compileErr  error
}

// Compile returns the benchmark's un-annotated DISA binary (cached).
func (b *Benchmark) Compile() (*isa.Program, error) {
	b.compileOnce.Do(func() {
		b.prog, b.compileErr = codegen.CompileSource(b.Source)
		if b.compileErr != nil {
			b.compileErr = fmt.Errorf("bench %s: %w", b.Name, b.compileErr)
		}
	})
	return b.prog, b.compileErr
}

var registry []*Benchmark

func register(b *Benchmark) *Benchmark {
	registry = append(registry, b)
	return b
}

// All returns the corpus in the paper's Table 2 order.
func All() []*Benchmark { return registry }

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns the benchmark names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// rng returns the deterministic generator for a benchmark/input-set pair.
// The two input sets use different seeds and, where generators choose to,
// different distribution parameters.
func rng(name string, set InputSet) *rand.Rand {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if set == TrainInput {
		h ^= 0x5bf03635
	}
	return rand.New(rand.NewSource(h))
}
