package bench

import (
	"testing"

	"dmp/internal/codegen"
	"dmp/internal/emu"
	"dmp/internal/lang"
)

// TestGenSourceWellFormed drives the generator across many seeds: every
// generated program must parse, pass the semantic checker, compile to a
// valid DISA binary, and (being terminating by construction) run to halt on
// a small input tape.
func TestGenSourceWellFormed(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	input := make([]int64, 64)
	for i := range input {
		input[i] = int64(i * 37)
	}
	for seed := 0; seed < seeds; seed++ {
		src := GenSource(int64(seed))
		f, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if err := lang.Check(f); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, src)
		}
		prog, err := codegen.CompileSource(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
		// Generated programs terminate by construction but nested loops and
		// call chains multiply; allow a generous budget before declaring a
		// seed non-terminating.
		m := emu.New(prog, input, 0)
		if _, err := m.Run(100_000_000); err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
	}
}

// TestGenSourceDeterministic pins the generator to its seed: the corpus it
// contributes to fuzzing and property tests must be reproducible.
func TestGenSourceDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if GenSource(seed) != GenSource(seed) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
	if GenSource(1) == GenSource(2) {
		t.Error("distinct seeds produced identical programs")
	}
}
