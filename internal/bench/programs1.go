package bench

// First half of the corpus: the SPEC CPU2000 stand-ins gzip..vortex.

// Gzip models LZ-style compression: a per-symbol match loop whose trip count
// is an unpredictable function of the data (the loop-type diverge branch the
// paper credits for gzip's +6% from loop selection), plus a literal/match
// hammock.
var Gzip = register(&Benchmark{
	Name:  "gzip",
	Trait: "unpredictable-trip match loops; literal/match hammock",
	Source: `
var window[256];
var wpos = 0;
var literals = 0;
var matches = 0;
var checksum = 0;

func matchlen(v) {
	var lim = 3 + (v & 3);
	var len = 0;
	while (len < lim) {
		if (window[(wpos + len) & 255] != ((v >> len) & 1)) {
			return len;
		}
		len = len + 1;
	}
	return len;
}

func crc(v) {
	var h = v;
	var k = 0;
	while (k < 6) {
		h = (h * 131) + (h >> 7);
		k = k + 1;
	}
	return h & 65535;
}

func main() {
	while (inavail()) {
		var v = in();
		checksum = (checksum + crc(v)) & 1048575;
		var best = matchlen(v);
		if (best >= 3 && ((v >> 9) & 3) != 0) {
			matches = matches + 1;
			wpos = (wpos + best) & 255;
			checksum = checksum + best;
		} else {
			literals = literals + 1;
			window[wpos] = v & 1;
			wpos = (wpos + 1) & 255;
			checksum = checksum ^ v;
		}
		if (((v >> 11) & 1) == (checksum & 1)) { checksum = checksum + 3; }
		else { checksum = checksum - 1; }
	}
	out(literals);
	out(matches);
	out(checksum);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("gzip", set)
		n := 7000 * scale
		in := make([]int64, n)
		for i := range in {
			// Low-order bits are all ones (compressible data): the match loop
			// usually runs to its concentrated data-dependent limit, with
			// occasional corrupted symbols adding early mismatch exits.
			v := int64(r.Intn(1<<16)) | 0x7f
			if r.Intn(8) == 0 {
				v &^= int64(r.Intn(128))
			}
			in[i] = v
		}
		return in
	},
})

// Vpr models annealing-style placement: several short, heavily mispredicted
// accept/reject hammocks (the paper: always-predicating short hammocks gains
// vpr 12%).
var Vpr = register(&Benchmark{
	Name:  "vpr",
	Trait: "many short mispredicted hammocks",
	Source: `
var grid[512];
var cost = 0;
var accepts = 0;

func refit(base) {
	var sum = 0;
	for (var k = 0; k < 6; k = k + 1) {
		sum = sum + grid[(base + k * 37) & 511];
	}
	return sum >> 3;
}

func main() {
	while (inavail()) {
		var dx = in();
		var r = in();
		var idx = dx & 511;
		var old = grid[idx];
		var cand = old + (dx & 7) - 3;
		var delta = cand - old;
		if (delta < 0) {
			cost = cost + delta;
			accepts = accepts + 1;
			grid[idx] = cand;
			if ((r & 127) == 0) {
				cost = cost + refit(idx) + refit(idx ^ 255);
			}
		} else {
			if (r & 1) {
				cost = cost + delta;
				grid[idx] = cand;
			} else {
				cost = cost - 1;
			}
		}
		var nb = 0;
		while (nb < 4) {
			cost = cost + (grid[(idx + nb) & 511] >> 6);
			nb = nb + 1;
		}
		if ((r & 31) == 0) { accepts = accepts + 1; }
	}
	out(cost);
	out(accepts);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("vpr", set)
		n := 2 * 7000 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(1 << 12))
		}
		return in
	},
})

// Gcc models parsing/reduction over a token stream: deep dispatch chains,
// stack under/overflow escapes and helper reductions — very complex CFGs
// with a high misprediction rate and few clean hammocks, matching the
// paper's observation that Every-br performs almost as well as careful
// selection on gcc.
var Gcc = register(&Benchmark{
	Name:  "gcc",
	Trait: "complex CFGs, high MPKI, few frequently-hammocks",
	Source: `
var nstack[64];
var nodes[1024];
var sp = 0;
var emitted = 0;
var errors = 0;

func repair(depth) {
	var fixed = 0;
	for (var k = 0; k < depth & 7; k = k + 1) {
		fixed = fixed + nstack[k & 63];
	}
	return fixed & 15;
}

func reduce(op, a, b) {
	if (op == 0) { return a + b; }
	if (op == 1) { return a - b; }
	if (op == 2) {
		if (a > b) { return a; }
		return b;
	}
	return a ^ b;
}

func main() {
	while (inavail()) {
		var tok = in();
		var kind = tok & 7;
		if (kind < 3) {
			if (sp < 60) {
				nstack[sp] = tok >> 3;
				sp = sp + 1;
			} else {
				errors = errors + 1;
				sp = sp >> 1;
			}
		} else {
			if (sp >= 2) {
				var b = nstack[sp - 1];
				var a = nstack[sp - 2];
				sp = sp - 1;
				nstack[sp - 1] = reduce(tok & 3, a, b);
				if ((tok & 24) == 0 && sp > 1) {
					sp = sp - 1;
					emitted = emitted + 1;
					if ((tok & 1023) == 0) {
						errors = errors + repair(sp) + repair(sp >> 1);
					}
				}
			} else {
				errors = errors + 1;
				if ((tok & 32) != 0) { continue; }
				nstack[0] = tok;
				sp = 1;
			}
		}
		var scan = 0;
		while (scan < 7) {
			nodes[(emitted + scan) & 1023] = sp + scan;
			scan = scan + 1;
		}
	}
	out(emitted);
	out(errors);
	out(sp);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("gcc", set)
		n := 11000 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(1 << 14))
		}
		return in
	},
})

// Mcf models network-simplex pricing: a large arc array accessed with
// data-dependent indices (memory bound, lowest base IPC in Table 2) and one
// dominant, heavily mispredicted short hammock whose always-predication
// gains 14% in the paper.
var Mcf = register(&Benchmark{
	Name:  "mcf",
	Trait: "memory bound; one dominant mispredicted short hammock",
	Source: `
var arcs[16384];
var flow = 0;
var pushes = 0;

func rebalance(base) {
	var acc = 0;
	for (var k = 0; k < 5; k = k + 1) {
		acc = acc + (arcs[(base + k * 911) & 16383] & 255);
	}
	return acc >> 4;
}

func main() {
	var i = 0;
	while (i < 16384) {
		arcs[i] = i * 2654435761;
		arcs[i + 1] = i ^ 40503;
		i = i + 2;
	}
	while (inavail()) {
		var v = in();
		var node = v & 16383;
		var depth = 0;
		while (depth < 3) {
			node = (node + 4097) & 16383;
			v = v + arcs[node];
			depth = depth + 1;
		}
		if (v < 65536) {
			if ((v & 31) == 0) { pushes = pushes + 1; }
		}
		if (v >= 1048576) {
			if ((v & 31) == 0) { flow = flow + 1; }
		}
		var a = arcs[v & 16383];
		if ((a & 1023) < 130) {
			flow = flow + 1;
			pushes = pushes + 1;
		} else {
			flow = flow - 1;
		}
		if ((v & 255) == 0) {
			flow = flow + rebalance(v) + rebalance(v >> 7);
		}
		arcs[(v >> 3) & 16383] = a + v;
	}
	out(flow);
	out(pushes);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("mcf", set)
		n := 9000 * scale
		in := make([]int64, n)
		for i := range in {
			if set == RunInput {
				// Node ids in the low range: the small-network special case
				// executes, the overflow case never does.
				in[i] = int64(r.Intn(1 << 20))
			} else {
				// The train network is larger: ids shift up, so the overflow
				// case executes and the small-network case never does.
				in[i] = int64(r.Intn(1<<20) + 65536)
			}
		}
		return in
	},
})

// Crafty models bitboard scanning: a pop-lowest-bit loop with an
// unpredictable trip count and nested square-classification hammocks with
// short-circuit conditions.
var Crafty = register(&Benchmark{
	Name:  "crafty",
	Trait: "bit-scan loops; nested hammocks with && conditions",
	Source: `
var score = 0;
var pieces = 0;

func probe(mask) {
	var depth = 0;
	for (var k = 0; k < 4; k = k + 1) {
		depth = depth + ((mask >> k) & 3);
	}
	return depth;
}

func main() {
	while (inavail()) {
		var bb = in() & 65535;
		var mat = 0;
		while (mat < 9) {
			score = score + ((bb >> mat) & 1);
			mat = mat + 1;
		}
		if (bb > 511) {
			if ((bb & 1) == 1) { score = score + 1; }
		}
		while (bb != 0) {
			var bit = bb & (0 - bb);
			bb = bb ^ bit;
			pieces = pieces + 1;
			var sq = 0;
			var t = bit;
			while (t > 1) {
				t = t >> 1;
				sq = sq + 1;
			}
			if (sq >= 4 && sq < 12) {
				score = score + 2;
				if ((bit & 170) != 0 && (bb & 5) == 5) {
					score = score + probe(bb) + probe(bb >> 2);
				}
			} else {
				if ((bit & 21845) != 0) { score = score + 1; }
				else { score = score - 1; }
			}
		}
	}
	out(score);
	out(pieces);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("crafty", set)
		n := 6500 * scale
		in := make([]int64, n)
		for i := range in {
			// Sparse masks clustered in the low byte: short, semi-regular
			// bit-scan loops. Train games occasionally use the full board
			// width, exercising a region the run input never reaches.
			in[i] = int64(r.Intn(1<<9)) & int64(r.Intn(1<<9)) & int64(r.Intn(1<<9))
			if set == TrainInput && r.Intn(12) == 0 {
				in[i] |= int64(r.Intn(1<<16)) & int64(r.Intn(1<<16)) & ^int64(511)
			}
		}
		return in
	},
})

// Parser models dictionary lookup: for each input word, a scan loop over a
// sorted table whose exit position is data dependent — the
// frequently-mispredicted loop branch the paper credits for parser's 14%
// gain from diverge loops.
var Parser = register(&Benchmark{
	Name:  "parser",
	Trait: "unpredictable-exit dictionary scan loop",
	Source: `
var dict[16];
var found = 0;
var miss = 0;

func main() {
	var i = 0;
	while (i < 16) {
		dict[i] = i * 61;
		i = i + 1;
	}
	while (inavail()) {
		var w = in();
		var sig = 0;
		var k = 0;
		while (k < 4) {
			sig = sig * 31 + ((w >> (k * 3)) & 7);
			k = k + 1;
		}
		miss = miss + (sig & 0);
		var j = 0;
		while (j < 16 && dict[j] < w) {
			j = j + 1;
		}
		if (j < 16 && dict[j] == w) {
			found = found + 1;
		} else {
			miss = miss + 1;
		}
	}
	out(found);
	out(miss);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("parser", set)
		n := 9000 * scale
		in := make([]int64, n)
		for i := range in {
			// Word "lengths" cluster around the dictionary middle (real word
			// lengths are tightly distributed): scan exits land on a few
			// neighbouring slots, so a mispredicted exit is a near miss.
			slot := 6 + r.Intn(4) // exits between slots 6 and 9
			if r.Intn(4) == 0 {
				in[i] = int64(slot * 61)
			} else {
				in[i] = int64(slot*61 - r.Intn(60))
			}
		}
		return in
	},
})

// Eon models shading arithmetic: mostly-biased clamp hammocks and simple
// hammocks on smooth data — a low-MPKI benchmark where the few mispredicted
// branches are simple hammocks.
var Eon = register(&Benchmark{
	Name:  "eon",
	Trait: "low MPKI; mispredictions concentrated in simple hammocks",
	Source: `
var acc = 0;
var clamped = 0;

func shade(x, y) {
	var v = (x * y) >> 4;
	if (v < 0) { v = 0 - v; }
	if (v > 255) {
		clamped = clamped + 1;
		v = 255;
	}
	return v;
}

func main() {
	while (inavail()) {
		var x = in();
		var y = in();
		var c = shade(x, y);
		if (((x * y) & 255) > 240) { acc = acc + c; } else { acc = acc + (c >> 1); }
		acc = acc + ((x + y) >> 3);
	}
	out(acc);
	out(clamped);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("eon", set)
		n := 2 * 8000 * scale
		in := make([]int64, n)
		for i := range in {
			// Mostly small positive values: clamps are biased, the c>128
			// hammock is moderately unpredictable.
			in[i] = int64(r.Intn(40) + 1)
		}
		return in
	},
})

// Perlbmk models opcode dispatch in an interpreter: an if-else dispatch
// chain over a skewed opcode distribution, with small handler hammocks.
var Perlbmk = register(&Benchmark{
	Name:  "perlbmk",
	Trait: "interpreter dispatch chains; simple handler hammocks",
	Source: `
var regs[16];

func trap(v) {
	var acc = 0;
	for (var k = 0; k < 4; k = k + 1) {
		acc = acc + ((v >> (k * 2)) & 3);
	}
	return acc;
}

func main() {
	while (inavail()) {
		var opr = in();
		var op = opr & 7;
		var r1 = (opr >> 3) & 15;
		var v = opr >> 7;
		if (op == 0) {
			regs[r1] = regs[r1] + v;
			if ((v & 255) == 0) {
				regs[r1] = regs[r1] + trap(v) + trap(v >> 1);
			}
		} else { if (op == 1) {
			regs[r1] = regs[r1] ^ v;
		} else { if (op == 2) {
			if (regs[r1] > v) { regs[r1] = v; }
		} else { if (op == 3) {
			regs[r1] = regs[r1] >> 1;
		} else {
			regs[r1] = v;
		} } } }
	}
	var i = 0;
	while (i < 16) {
		out(regs[i]);
		i = i + 1;
	}
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("perlbmk", set)
		n := 12000 * scale
		in := make([]int64, n)
		for i := range in {
			// Skewed opcodes: 0 and 1 dominate.
			op := int64(0)
			switch k := r.Intn(100); {
			case k < 93:
				op = 0
			case k < 97:
				op = 1
			default:
				op = int64(r.Intn(3)) + 2
			}
			in[i] = op | int64(r.Intn(16))<<3 | int64(r.Intn(1024))<<7
		}
		return in
	},
})

// Gap models sequence arithmetic with threshold branches whose bias depends
// on the input distribution: the run and train sets straddle the thresholds
// differently, making gap the paper's most input-set-sensitive benchmark
// (26% of diverge branches selected under only one input set).
var Gap = register(&Benchmark{
	Name:  "gap",
	Trait: "input-set-sensitive branch biases",
	Source: `
var sums[32];
var hi = 0;
var lo = 0;

func main() {
	while (inavail()) {
		var v = in();
		if (v > 500) {
			sums[v & 31] += v;
			sums[(v + 7) & 31] += 1;
			if ((v & 3) == 0) { hi = hi + 2; } else { hi = hi + 1; }
		} else {
			sums[(v >> 2) & 31] += 1;
			if (v < 12) {
				if ((v & 7) == 0) { lo = lo + 3; }
			}
			lo = lo + 1;
		}
		if (v > 650) {
			hi = hi + 2;
			sums[(v + 5) & 31] += hi & 3;
			sums[(v + 11) & 31] += 2;
			lo = lo + (hi & 1);
		}
		var t = 1;
		if (v > 520) {
			t = 34;
			sums[(v + 3) & 31] += 2;
			sums[(v + 9) & 31] += 1;
			sums[(v + 17) & 31] += 1;
		}
		while (t > 0) {
			lo = lo + (t & 1);
			t = t - 1;
		}
		if ((v & 63) == 0) { lo = lo + 1; } else { lo = lo - 1; }
	}
	out(hi);
	out(lo);
	var i = 0;
	while (i < 32) {
		out(sums[i]);
		i = i + 1;
	}
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("gap", set)
		n := 11000 * scale
		in := make([]int64, n)
		for i := range in {
			if set == RunInput {
				// Clustered low: v>500 never fires and is predictable.
				in[i] = int64(r.Intn(450))
			} else {
				// Shifted high enough that the threshold branches fire
				// occasionally and the settle loop's average trip count
				// crosses LOOP_ITER: the same code selects a different
				// diverge-branch set under this profile.
				in[i] = int64(300 + r.Intn(500))
			}
		}
		return in
	},
})

// Vortex models an object store: hash inserts and lookups dominated by
// highly biased validity checks — Table 2's lowest MPKI alongside gap.
var Vortex = register(&Benchmark{
	Name:  "vortex",
	Trait: "highly predictable branches, low MPKI, high base IPC",
	Source: `
var table[4096];
var stored = 0;
var hits = 0;
var conflicts = 0;

func audit(h) {
	var live = 0;
	for (var k = 0; k < 5; k = k + 1) {
		if (table[(h + k) & 4095] != 0) { live = live + 1; }
	}
	return live;
}

func main() {
	while (inavail()) {
		var k = in() + 1;
		var h = (k * 40503) & 4095;
		if (table[h] == 0) {
			table[h] = k;
			stored = stored + 1;
			if ((k & 63) == 0) {
				stored = stored + (audit(h) + audit(h ^ 2048)) * 0;
			}
		} else {
			if (table[h] == k) { hits = hits + 1; }
			else { conflicts = conflicts + 1; }
		}
	}
	out(stored);
	out(hits);
	out(conflicts);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("vortex", set)
		n := 12000 * scale
		in := make([]int64, n)
		for i := range in {
			// Small key universe: lookups quickly become hits.
			in[i] = int64(r.Intn(400))
		}
		return in
	},
})
