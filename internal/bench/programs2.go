package bench

// Second half of the corpus: bzip2, twolf and the SPEC95 stand-ins.

// Bzip2 models block sorting: short bubble passes over freshly read blocks;
// the compare-and-swap hammock starts random and becomes biased as a block
// gets sorted — phase behaviour that rewards choosing when to predicate
// dynamically.
var Bzip2 = register(&Benchmark{
	Name:  "bzip2",
	Trait: "compare/swap hammocks with phase-dependent predictability",
	Source: `
var buf[16];
var swaps = 0;
var total = 0;

func rescan(from) {
	var runs = 0;
	for (var k = from; k < 15; k = k + 1) {
		if (buf[k] <= buf[k + 1]) { runs = runs + 1; }
	}
	return runs;
}

func main() {
	while (inavail()) {
		var i = 0;
		while (i < 16) {
			buf[i] = in();
			i = i + 1;
		}
		var pass = 0;
		while (pass < 4) {
			for (var j = 0; j < 15; j = j + 1) {
				if (buf[j] > buf[j + 1]) {
					var tmp = buf[j];
					buf[j] = buf[j + 1];
					buf[j + 1] = tmp;
					swaps = swaps + 1;
					if ((tmp & 511) == 0) {
						swaps = swaps + rescan(j) + rescan(j + 1);
					}
				}
			}
			pass = pass + 1;
		}
		total = total + buf[0] + buf[15];
	}
	out(swaps);
	out(total);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("bzip2", set)
		n := 16 * 450 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(1 << 10))
		}
		return in
	},
})

// Twolf models cell placement with helper functions whose hammock arms end
// in different return instructions: the return-CFM mechanism the paper
// credits for twolf's 8% gain, plus short mispredicted hammocks.
var Twolf = register(&Benchmark{
	Name:  "twolf",
	Trait: "hammocks merging at returns; short mispredicted hammocks",
	Source: `
var cells[256];
var wire = 0;
var moved = 0;

func penalty(d) {
	if (d < 0) { return (0 - d) * 2; }
	return d;
}

func trybump(idx, delta) {
	var old = cells[idx];
	var cand = old + delta;
	if ((cand & 7) == 0) {
		cells[idx] = cand;
		return 1;
	}
	return 0;
}

func main() {
	while (inavail()) {
		var a = in();
		var b = in();
		wire = wire + penalty(a - b);
		if (trybump(a & 255, b & 7) == 1) {
			moved = moved + 1;
		} else {
			wire = wire + 1;
		}
		var sc = 0;
		while (sc < 4) {
			wire = wire + (cells[(a + sc) & 255] >> 8);
			sc = sc + 1;
		}
	}
	out(wire);
	out(moved);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("twolf", set)
		n := 2 * 6500 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(1 << 10))
		}
		return in
	},
})

// Compress models LZW-style hashing: hit/miss hammocks on a hash table with
// moderate predictability.
var Compress = register(&Benchmark{
	Name:  "compress",
	Trait: "hash hit/miss hammocks of moderate predictability",
	Source: `
var htab[1024];
var codes = 0;
var misses = 0;
var prev = 0;

func flushdict(near) {
	var cleared = 0;
	for (var k = 0; k < 6; k = k + 1) {
		htab[(near + k) & 1023] = 0;
		cleared = cleared + 1;
	}
	return cleared;
}

func main() {
	while (inavail()) {
		var c = in();
		var h = c;
		var k = 0;
		while (k < 3) {
			h = h * 17 + 1;
			k = k + 1;
		}
		var key = ((prev << 5) ^ h) & 1023;
		if (htab[key] == c) {
			codes = codes + 1;
			prev = (prev + c) & 255;
		} else {
			misses = misses + 1;
			htab[key] = c;
			if ((c & 31) == 0 && (key & 1) == 0) {
				misses = misses + (flushdict(key) + flushdict(key ^ 512)) * 0;
			}
			if ((c & 7) == 0) { prev = 0; } else { prev = c & 255; }
		}
	}
	out(codes);
	out(misses);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("compress", set)
		n := 12000 * scale
		in := make([]int64, n)
		for i := range in {
			// Textual redundancy: a small alphabet with repeats.
			in[i] = int64(r.Intn(40))
		}
		return in
	},
})

// Go models territory evaluation: the corpus's most chaotic control flow —
// nested data-dependent conditions with short-circuits, a rare continue
// escape (a frequently-hammock), and a multi-return helper. Table 2 gives
// go the highest MPKI (23) by far.
var GoBench = register(&Benchmark{
	Name:  "go",
	Trait: "chaotic control flow, highest MPKI, frequently-hammocks",
	Source: `
var board[1024];
var captures = 0;
var influence = 0;

func liberty(p, v) {
	if ((v & 3) == 0) { return 0; }
	if ((v & 3) == 1) {
		if ((p & 7) < 4) { return 1; }
		return 2;
	}
	return (v >> 2) & 3;
}

func main() {
	while (inavail()) {
		var mv = in();
		var p = mv & 1023;
		var v = board[p];
		var lib = liberty(p, mv);
		if (lib == 0 && (mv & 16) != 0) {
			captures = captures + 1;
			board[p] = 0;
		} else {
			if (lib > 1 || (v & 1) == 1) {
				influence = influence + lib;
				if ((mv & 96) == 0) {
					board[p] = v + 1;
					continue;
				}
				board[p] = v ^ lib;
			} else {
				influence = influence - 1;
			}
		}
		if ((mv ^ v) & 1) { captures = captures + 1; }
		else { influence = influence + 1; }
	}
	out(captures);
	out(influence);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("go", set)
		n := 10000 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(1 << 16))
		}
		return in
	},
})

// Ijpeg models block transforms: long predictable inner loops over 8x8-style
// blocks with biased clamp hammocks — mispredictions are rare and localised.
var Ijpeg = register(&Benchmark{
	Name:  "ijpeg",
	Trait: "predictable block loops; biased clamp hammocks",
	Source: `
var block[64];
var outsum = 0;
var clamps = 0;

func main() {
	while (inavail()) {
		var base = in();
		var i = 0;
		while (i < 64) {
			block[i] = (base * (i + 3)) >> 2;
			i = i + 1;
		}
		var q = 0;
		while (q < 64) {
			var val = block[q] - (q << 1);
			if (val < 0) { val = 0; clamps = clamps + 1; }
			if (val > 255) { val = val & 255; }
			block[q] = val;
			q = q + 1;
		}
		if ((base * 2654435761) & 1) { outsum = outsum + block[7]; }
		else { outsum = outsum + block[56]; }
	}
	out(outsum);
	out(clamps);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("ijpeg", set)
		n := 420 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(48))
		}
		return in
	},
})

// Li models list-structure evaluation: a recursive walker whose atom/cons
// type check is a random simple hammock at every level — the simple-hammock
// dominance the paper notes for li.
var Li = register(&Benchmark{
	Name:  "li",
	Trait: "recursive evaluator; mispredictions in simple hammocks",
	Source: `
var heap[512];
var conses = 0;
var atoms = 0;

func eval(cell) {
	var acc = 0;
	for (var d = 0; d < 4; d = d + 1) {
		if ((cell & 3) != 0) {
			atoms = atoms + 1;
			acc = acc + (cell >> 1);
			cell = heap[(cell >> 2) & 511];
		} else {
			conses = conses + 1;
			acc = acc - cell;
			cell = heap[cell & 511];
		}
	}
	return acc & 65535;
}

func main() {
	var i = 0;
	while (i < 512) {
		heap[i] = i * 2347;
		i = i + 1;
	}
	var total = 0;
	while (inavail()) {
		total = total + eval(in());
	}
	out(total);
	out(conses);
	out(atoms);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("li", set)
		n := 8000 * scale
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(r.Intn(1 << 12))
		}
		return in
	},
})

// M88ksim models instruction-set simulation: a decode/execute dispatch over
// a heavily skewed opcode mix — almost everything predicts correctly
// (Table 2: 1.3 MPKI).
var M88ksim = register(&Benchmark{
	Name:  "m88ksim",
	Trait: "skewed decode dispatch; very low MPKI",
	Source: `
var gpr[32];
var icount = 0;

func main() {
	while (inavail()) {
		var inst = in();
		var opc = inst & 3;
		var rd = (inst >> 2) & 31;
		var rs = (inst >> 7) & 31;
		if (opc == 0) {
			gpr[rd] = gpr[rd] + gpr[rs];
		} else { if (opc == 1) {
			gpr[rd] = gpr[rs] << 1;
		} else { if (opc == 2) {
			if (gpr[rs] != 0) { gpr[rd] = gpr[rd] | 1; }
		} else {
			gpr[rd] = inst >> 12;
		} } }
		icount = icount + 1;
		var pipe = 0;
		while (pipe < 3) {
			gpr[0] = gpr[0] + pipe;
			pipe = pipe + 1;
		}
	}
	out(icount);
	out(gpr[5]);
}
`,
	Input: func(set InputSet, scale int) []int64 {
		r := rng("m88ksim", set)
		n := 13000 * scale
		in := make([]int64, n)
		for i := range in {
			opc := int64(0)
			if r.Intn(100) < 4 {
				opc = int64(r.Intn(3)) + 1
			}
			in[i] = opc | int64(r.Intn(1<<12))<<2
		}
		return in
	},
})
