package simcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dmp/internal/pipeline"
	"dmp/internal/trace"
)

// A stale-schema (legacy flat-layout) entry must never be picked up: entries
// live under a subdirectory versioned by the Stats schema fingerprint, so a
// cache directory written by an older binary reads as a miss, not as a
// silently half-decoded Stats.
func TestDiskLayoutIsSchemaVersioned(t *testing.T) {
	dir := t.TempDir()
	p := testProg(t)
	in := testInput(500)
	cfg := pipeline.DefaultConfig()

	warm := New(dir)
	key := warm.KeyOf(p, in, cfg)

	// Plant a legacy flat-layout entry at the pre-versioning path for this
	// exact key, holding decodable but wrong statistics.
	legacy, err := pipeline.MarshalStats(pipeline.Stats{Cycles: 123456789, Retired: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key.String()+".json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := warm.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := warm.Metrics(); m.Misses != 1 || m.DiskHits != 0 {
		t.Errorf("metrics with legacy entry = %+v, want a clean miss", m)
	}
	if a.Cycles == 123456789 {
		t.Error("legacy flat-layout entry was served")
	}

	// The fresh entry must live under the schema-versioned subdirectory.
	want := filepath.Join(dir, "s-"+pipeline.StatsSchema(), key.String()+".json")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("versioned entry missing at %s: %v", want, err)
	}

	// A cold cache over the same directory serves the versioned entry.
	cold := New(dir)
	b, err := cold.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := cold.Metrics(); m.DiskHits != 1 || m.Misses != 0 {
		t.Errorf("cold metrics = %+v, want pure disk hit", m)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("versioned disk entry differs from simulated result")
	}

	// An entry written under a different (stale) schema subdirectory is
	// invisible too.
	staleDir := filepath.Join(dir, "s-000000000000")
	if err := os.MkdirAll(staleDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staleDir, key.String()+".json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	stale := New(dir)
	if _, err := stale.Run(p, in, cfg); err != nil {
		t.Fatal(err)
	}
	if m := stale.Metrics(); m.DiskHits != 1 {
		t.Errorf("stale-schema sibling perturbed lookup: %+v", m)
	}
}

// Traced runs bypass memoization: a cached answer would emit no events. The
// bypass must neither consult nor populate any cache layer.
func TestTracerBypassesMemoization(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	p := testProg(t)
	in := testInput(500)
	cfg := pipeline.DefaultConfig()

	cols := [2]*trace.Collector{trace.NewCollector(), trace.NewCollector()}
	var results [2]pipeline.Stats
	for i, col := range cols {
		tcfg := cfg
		tcfg.Tracer = col
		st, err := c.Run(p, in, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = st
	}
	if cols[0].Len() == 0 || cols[1].Len() == 0 {
		t.Fatal("traced run emitted no events")
	}
	if cols[0].Len() != cols[1].Len() {
		t.Errorf("event counts differ across identical runs: %d vs %d", cols[0].Len(), cols[1].Len())
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("traced reruns disagree")
	}
	m := c.Metrics()
	if m.Bypasses != 2 || m.Hits != 0 || m.Misses != 0 || m.DiskHits != 0 {
		t.Errorf("metrics = %+v, want 2 pure bypasses", m)
	}
	if m.SimWall <= 0 || m.SimCycles != 2*results[0].Cycles {
		t.Errorf("bypassed runs not counted in throughput: %+v", m)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "s-*", "*.json")); len(entries) != 0 {
		t.Errorf("bypassed run persisted entries: %v", entries)
	}

	// The same simulation untraced is a fresh miss (nothing was cached), and
	// it must agree with the traced results.
	st, err := c.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.Misses != 1 {
		t.Errorf("untraced follow-up metrics = %+v, want 1 miss", m)
	}
	if !reflect.DeepEqual(st, results[0]) {
		t.Error("untraced result differs from traced result")
	}
	// Bypasses are not lookups: the hit rate denominator excludes them.
	if got := c.Metrics().Requests(); got != 1 {
		t.Errorf("Requests() = %d, want 1 (bypasses excluded)", got)
	}
}
