// Package simcache memoizes cycle-level simulations. The paper's evaluation
// re-runs pipeline.Run over the same (program, input, config) triples many
// times — every figure re-simulates the baseline, and several figures share
// selection configurations — so the harness routes all simulations through a
// content-addressed cache: a stable SHA-256 key over the canonical program
// serialization (code + diverge annotations), the input tape and the machine
// configuration.
//
// The in-memory layer guarantees each distinct simulation executes exactly
// once per process: concurrent requests for the same key are deduplicated
// singleflight-style, with later arrivals blocking on the first runner. An
// optional on-disk layer (enabled by the DMP_CACHE_DIR environment variable)
// persists results across dmpbench/dmpsim invocations.
//
// The cache also keeps run metrics — hits, misses, simulated cycles and
// aggregate simulation wall time — surfaced by the CLIs via -metrics-json
// and the evaluation summary footer.
package simcache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dmp/internal/isa"
	"dmp/internal/pipeline"
)

// EnvDir names the environment variable that enables the on-disk layer.
const EnvDir = "DMP_CACHE_DIR"

// keySchema is folded into every key. It has two components: a hand-bumped
// generation for changes to the key derivation itself, and the reflection-
// derived fingerprint of the Stats wire shape (pipeline.StatsSchema), so that
// extending Stats automatically invalidates old entries — without it, stale
// DMP_CACHE_DIR entries written by an older binary would unmarshal with the
// new fields silently zero-valued. The same fingerprint versions the on-disk
// layout (see diskPath).
var keySchema = "dmp-simcache-v2\x00" + pipeline.StatsSchema() + "\x00"

// Key identifies one simulation: a content hash of program, input and config.
type Key [sha256.Size]byte

// String returns the hexadecimal form of the key (the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// result is one memoized simulation. ready is closed once stats/err are
// final, so concurrent requesters of the same key can block on it.
type result struct {
	ready chan struct{}
	stats pipeline.Stats
	err   error
}

// Cache memoizes pipeline runs. The zero value is not usable; construct with
// New or FromEnv. A nil *Cache is valid and simply runs every simulation.
type Cache struct {
	dir string // "" = memory-only

	mu   sync.Mutex
	mem  map[Key]*result
	smem map[Key]*sresult // sampled runs: estimates never answer for exact stats

	// codeHash memoizes the program-content hash by annotation-sidecar
	// identity: harness workloads simulate the same compiled binary under
	// many sidecars, and WithAnnots shares the code segment across them.
	codeMu   sync.Mutex
	codeHash map[*isa.Inst][sha256.Size]byte

	metrics Metrics
}

// New returns a cache with an optional persistent directory (created on
// first store). An empty dir keeps the cache memory-only.
func New(dir string) *Cache {
	return &Cache{dir: dir, mem: map[Key]*result{}, codeHash: map[*isa.Inst][sha256.Size]byte{}}
}

// FromEnv returns a cache whose disk layer is controlled by DMP_CACHE_DIR.
func FromEnv() *Cache { return New(os.Getenv(EnvDir)) }

// Dir returns the persistent directory, or "" for a memory-only cache.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// progHash returns the content hash of the program including annotations,
// memoizing the (large, annotation-independent) prefix by code identity.
func (c *Cache) progHash(p *isa.Program) [sha256.Size]byte {
	if len(p.Annots) == 0 && len(p.Code) > 0 {
		// Fast path for the un-annotated baseline binary: memoize whole-hash
		// by code-segment identity.
		id := &p.Code[0]
		c.codeMu.Lock()
		h, ok := c.codeHash[id]
		c.codeMu.Unlock()
		if ok {
			return h
		}
		h = p.Hash()
		c.codeMu.Lock()
		c.codeHash[id] = h
		c.codeMu.Unlock()
		return h
	}
	return p.Hash()
}

// KeyOf derives the cache key for one simulation.
func (c *Cache) KeyOf(prog *isa.Program, input []int64, cfg pipeline.Config) Key {
	h := sha256.New()
	h.Write([]byte(keySchema))
	ph := c.progHash(prog)
	h.Write(ph[:])
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(input)))
	h.Write(n[:])
	buf := make([]byte, 0, 8*len(input))
	for _, v := range input {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	h.Write(buf)
	h.Write(cfg.AppendCanonical(nil))
	var k Key
	h.Sum(k[:0])
	return k
}

// Run returns the memoized statistics for the simulation, executing it at
// most once per process per distinct (program, input, config) triple. On a
// nil cache it degenerates to pipeline.Run. Traced runs (cfg.Tracer != nil)
// bypass memoization entirely: a cached answer would silently emit no
// events, and the tracer is deliberately not part of the cache key.
func (c *Cache) Run(prog *isa.Program, input []int64, cfg pipeline.Config) (pipeline.Stats, error) {
	return c.RunCtx(context.Background(), prog, input, cfg)
}

// isCtxErr reports whether err stems from a cancelled or expired context.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunCtx is Run under a cancellation context. Cancellation never poisons the
// cache: a run aborted by its context is evicted before its waiters wake, so
// the next request for the same key computes the result afresh, and a waiter
// deduplicating against a run that was cancelled by the *runner's* context
// retries with its own (live) context instead of inheriting the error.
func (c *Cache) RunCtx(ctx context.Context, prog *isa.Program, input []int64, cfg pipeline.Config) (pipeline.Stats, error) {
	if c == nil {
		return pipeline.RunCtx(ctx, prog, input, cfg)
	}
	if cfg.Tracer != nil {
		c.metrics.bypasses.Add(1)
		start := time.Now()
		st, err := pipeline.RunCtx(ctx, prog, input, cfg)
		c.metrics.simWallNS.Add(int64(time.Since(start)))
		if err == nil {
			c.metrics.simCycles.Add(st.Cycles)
			c.metrics.simInsts.Add(st.Retired)
		}
		return st, err
	}
	key := c.KeyOf(prog, input, cfg)

	for {
		c.mu.Lock()
		if r, ok := c.mem[key]; ok {
			c.mu.Unlock()
			select {
			case <-r.ready:
				c.metrics.hits.Add(1)
			default:
				// Another goroutine is running this exact simulation; wait
				// for it — or for our own context, whichever ends first.
				c.metrics.dedups.Add(1)
				select {
				case <-r.ready:
				case <-ctx.Done():
					return pipeline.Stats{}, ctx.Err()
				}
			}
			if r.err != nil && isCtxErr(r.err) {
				// The runner was cancelled (and evicted the entry before
				// closing ready). Our context may still be live: retry.
				if err := ctx.Err(); err != nil {
					return pipeline.Stats{}, err
				}
				continue
			}
			return r.stats, r.err
		}
		r := &result{ready: make(chan struct{})}
		c.mem[key] = r
		c.mu.Unlock()
		return c.compute(ctx, key, r, prog, input, cfg)
	}
}

// compute executes (or disk-loads) the simulation for a freshly inserted
// in-flight entry, publishing the result to waiters when it returns.
func (c *Cache) compute(ctx context.Context, key Key, r *result, prog *isa.Program, input []int64, cfg pipeline.Config) (pipeline.Stats, error) {
	defer close(r.ready)

	if st, ok := c.loadDisk(key); ok {
		c.metrics.diskHits.Add(1)
		r.stats = st
		return st, nil
	}

	start := time.Now()
	r.stats, r.err = pipeline.RunCtx(ctx, prog, input, cfg)
	c.metrics.simWallNS.Add(int64(time.Since(start)))
	if r.err != nil && isCtxErr(r.err) {
		// Evict before the deferred close wakes any waiters: a cancelled
		// run is not a result, and must not be memoized.
		c.metrics.cancels.Add(1)
		c.mu.Lock()
		delete(c.mem, key)
		c.mu.Unlock()
		return r.stats, r.err
	}
	c.metrics.misses.Add(1)
	if r.err == nil {
		c.metrics.simCycles.Add(r.stats.Cycles)
		c.metrics.simInsts.Add(r.stats.Retired)
		c.storeDisk(key, r.stats)
	}
	return r.stats, r.err
}

// Metrics returns a snapshot of the cache counters.
func (c *Cache) Metrics() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return c.metrics.snapshot()
}

// diskPath places entries under a schema-versioned subdirectory. The Stats
// fingerprint is already folded into the key hash; repeating it in the path
// keeps generations physically separate, so stale-schema files can never be
// picked up (and are easy to garbage-collect by directory).
func (c *Cache) diskPath(key Key) string {
	return filepath.Join(c.dir, "s-"+pipeline.StatsSchema(), key.String()+".json")
}

// loadDisk consults the persistent layer; any failure (missing file, stale
// schema, corrupt entry) reads as a miss.
func (c *Cache) loadDisk(key Key) (pipeline.Stats, bool) {
	if c.dir == "" {
		return pipeline.Stats{}, false
	}
	b, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return pipeline.Stats{}, false
	}
	st, err := pipeline.UnmarshalStats(b)
	if err != nil {
		return pipeline.Stats{}, false
	}
	return st, true
}

// storeDisk persists a result best-effort: a read-only or missing directory
// never fails the simulation. The write is atomic (temp file + rename) so
// concurrent processes sharing a cache directory cannot observe torn
// entries.
func (c *Cache) storeDisk(key Key, st pipeline.Stats) {
	if c.dir == "" {
		return
	}
	b, err := pipeline.MarshalStats(st)
	if err != nil {
		return
	}
	dir := filepath.Dir(c.diskPath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.diskPath(key)); err != nil {
		os.Remove(name)
	}
}
