package simcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dmp/internal/pipeline"
)

// TestRunCtxCancelledNotMemoized: a cancelled run must not poison the cache.
// A later identical request with a live context reruns the simulation and
// succeeds.
func TestRunCtxCancelledNotMemoized(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(50_000)
	cfg := pipeline.DefaultConfig()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunCtx(ctx, p, in, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx(cancelled) err = %v, want context.Canceled", err)
	}
	m := c.Metrics()
	if m.Cancels != 1 {
		t.Fatalf("Cancels = %d, want 1", m.Cancels)
	}
	if m.Misses != 0 {
		t.Fatalf("Misses = %d after cancelled run, want 0 (must not memoize)", m.Misses)
	}

	st, err := c.RunCtx(context.Background(), p, in, cfg)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if st.Retired == 0 {
		t.Fatal("retry after cancel produced an empty result")
	}
	m = c.Metrics()
	if m.Misses != 1 {
		t.Fatalf("Misses = %d after retry, want 1", m.Misses)
	}
}

// TestRunCtxWaiterSurvivesRunnerCancel: when the in-flight runner is
// cancelled, deduplicated waiters with live contexts retry the simulation
// themselves instead of inheriting the runner's cancellation error.
func TestRunCtxWaiterSurvivesRunnerCancel(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(200_000)
	cfg := pipeline.DefaultConfig()

	runnerCtx, cancelRunner := context.WithCancel(context.Background())
	runnerDone := make(chan error, 1)
	go func() {
		_, err := c.RunCtx(runnerCtx, p, in, cfg)
		runnerDone <- err
	}()

	// Wait until the runner's entry is in flight so the waiter dedups onto it.
	for i := 0; ; i++ {
		c.mu.Lock()
		n := len(c.mem)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("runner never registered its in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	waiterErrs := make([]error, 3)
	for i := range waiterErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, waiterErrs[i] = c.RunCtx(context.Background(), p, in, cfg)
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	cancelRunner()

	if err := <-runnerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("runner err = %v, want context.Canceled", err)
	}
	wg.Wait()
	for i, err := range waiterErrs {
		if err != nil {
			t.Errorf("waiter %d err = %v, want success after retry", i, err)
		}
	}
	if m := c.Metrics(); m.Cancels == 0 {
		t.Errorf("Cancels = 0, want >= 1")
	}
}

// TestRunCtxWaiterCancelled: a waiter whose own context ends while waiting
// gets its context error back promptly.
func TestRunCtxWaiterCancelled(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(300_000)
	cfg := pipeline.DefaultConfig()

	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		if _, err := c.RunCtx(context.Background(), p, in, cfg); err != nil {
			t.Errorf("runner: %v", err)
		}
	}()
	for i := 0; ; i++ {
		c.mu.Lock()
		n := len(c.mem)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("runner never registered its in-flight entry")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RunCtx(ctx, p, in, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want deadline exceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("waiter blocked %v after its context ended", waited)
	}
	<-runnerDone
}
