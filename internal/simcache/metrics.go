package simcache

import (
	"sync/atomic"
	"time"
)

// Metrics holds the cache's internal atomic counters.
type Metrics struct {
	hits      atomic.Uint64
	dedups    atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	bypasses  atomic.Uint64
	cancels   atomic.Uint64
	sampled   atomic.Uint64
	simWallNS atomic.Int64
	simCycles atomic.Int64
	simInsts  atomic.Uint64
}

func (m *Metrics) snapshot() Snapshot {
	return Snapshot{
		Hits:      m.hits.Load(),
		Dedups:    m.dedups.Load(),
		DiskHits:  m.diskHits.Load(),
		Misses:    m.misses.Load(),
		Bypasses:  m.bypasses.Load(),
		Cancels:   m.cancels.Load(),
		Sampled:   m.sampled.Load(),
		SimWall:   time.Duration(m.simWallNS.Load()),
		SimCycles: m.simCycles.Load(),
		SimInsts:  m.simInsts.Load(),
	}
}

// Snapshot is a point-in-time copy of the cache counters, JSON-encodable for
// the -metrics-json flag.
type Snapshot struct {
	// Hits counts requests answered from the in-memory layer.
	Hits uint64 `json:"hits"`
	// Dedups counts requests that blocked on an identical in-flight
	// simulation instead of running their own copy.
	Dedups uint64 `json:"dedups"`
	// DiskHits counts requests answered from the persistent layer.
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts simulations actually executed.
	Misses uint64 `json:"misses"`
	// Bypasses counts traced simulations that skipped memoization (a
	// cached answer would emit no events); they execute every time.
	Bypasses uint64 `json:"bypasses"`
	// Cancels counts runs aborted by context cancellation; they are
	// evicted, never memoized, and excluded from every other counter.
	Cancels uint64 `json:"cancels,omitempty"`
	// Sampled counts SMARTS-sampled simulations actually executed (a
	// subset of Misses, plus traced bypass runs). Their wall time lands in
	// SimWall but their estimated cycles never enter SimCycles — that
	// counter means cycles the pipeline really simulated.
	Sampled uint64 `json:"sampled,omitempty"`
	// SimWall is the aggregate wall time spent inside pipeline.Run.
	SimWall time.Duration `json:"sim_wall_ns"`
	// SimCycles is the total simulated cycles across executed runs.
	SimCycles int64 `json:"sim_cycles"`
	// SimInsts is the total retired instructions across executed runs
	// (cache-answered runs excluded: the denominator of real throughput).
	SimInsts uint64 `json:"sim_insts"`
}

// Requests returns the total number of cache lookups.
func (s Snapshot) Requests() uint64 { return s.Hits + s.Dedups + s.DiskHits + s.Misses }

// HitRate returns the fraction of requests served without executing a
// simulation.
func (s Snapshot) HitRate() float64 {
	total := s.Requests()
	if total == 0 {
		return 0
	}
	return float64(total-s.Misses) / float64(total)
}

// CyclesPerSec returns the simulator throughput in simulated cycles per
// wall-clock second over the executed runs.
func (s Snapshot) CyclesPerSec() float64 {
	if s.SimWall <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.SimWall.Seconds()
}

// KIPS returns the simulator throughput in simulated kilo-instructions per
// wall-clock second over the executed runs.
func (s Snapshot) KIPS() float64 {
	if s.SimWall <= 0 {
		return 0
	}
	return float64(s.SimInsts) / 1000 / s.SimWall.Seconds()
}

// Sub returns the counter deltas since an earlier snapshot.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Hits:      s.Hits - prev.Hits,
		Dedups:    s.Dedups - prev.Dedups,
		DiskHits:  s.DiskHits - prev.DiskHits,
		Misses:    s.Misses - prev.Misses,
		Bypasses:  s.Bypasses - prev.Bypasses,
		Cancels:   s.Cancels - prev.Cancels,
		Sampled:   s.Sampled - prev.Sampled,
		SimWall:   s.SimWall - prev.SimWall,
		SimCycles: s.SimCycles - prev.SimCycles,
		SimInsts:  s.SimInsts - prev.SimInsts,
	}
}
