package simcache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dmp/internal/pipeline"
	"dmp/internal/sample"
)

// TestRunSampledMemoizes: the second identical sampled request is a hit and
// returns a Result deep-equal to the executed one.
func TestRunSampledMemoizes(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(120_000)
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()

	r1, err := c.RunSampled(p, in, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RunSampled(p, in, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("memoized sampled result differs from executed one")
	}
	m := c.Metrics()
	if m.Misses != 1 || m.Hits != 1 || m.Sampled != 1 {
		t.Errorf("metrics = %+v, want 1 miss / 1 hit / 1 sampled", m)
	}
}

// TestRunSampledKeySeparation: a sampled run and a full-fidelity run of the
// same workload must occupy disjoint cache entries, and different sampling
// confs must not collide with each other.
func TestRunSampledKeySeparation(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(120_000)
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()

	if _, err := c.Run(p, in, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSampled(p, in, cfg, sc); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Misses != 2 || m.Hits != 0 {
		t.Fatalf("full + sampled of the same workload: %d misses %d hits, want 2/0", m.Misses, m.Hits)
	}

	k1 := c.KeyOfSampled(p, in, cfg, sc)
	sc2 := sc
	sc2.Seed = 99
	k2 := c.KeyOfSampled(p, in, cfg, sc2)
	if k1 == k2 {
		t.Error("different seeds produced the same sampled key")
	}
	if k1 == c.KeyOf(p, in, cfg) {
		t.Error("sampled key collides with the full-fidelity key")
	}

	// Implied defaults and their explicit spelling are the same entry.
	sc3 := sc
	sc3.Confidence = 0 // withDefaults resolves to 0.95
	sc4 := sc
	sc4.Confidence = 0.95
	if c.KeyOfSampled(p, in, cfg, sc3) != c.KeyOfSampled(p, in, cfg, sc4) {
		t.Error("canonicalization: implied and explicit defaults keyed differently")
	}
}

// TestRunSampledDisk: a fresh Cache over the same directory answers from the
// schema-versioned sampled namespace without re-simulating.
func TestRunSampledDisk(t *testing.T) {
	dir := t.TempDir()
	p := testProg(t)
	in := testInput(120_000)
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()

	c1 := New(dir)
	r1, err := c1.RunSampled(p, in, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "sm-"+sample.Schema())
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("sampled disk namespace %s: %v", want, err)
	}

	c2 := New(dir)
	r2, err := c2.RunSampled(p, in, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("disk round-trip changed the sampled result")
	}
	m := c2.Metrics()
	if m.DiskHits != 1 || m.Misses != 0 {
		t.Errorf("fresh cache metrics = %+v, want 1 disk hit / 0 misses", m)
	}
}

// TestRunSampledCancelledNotMemoized: the RunCtx cancellation contract holds
// on the sampled path — an aborted run is evicted and a live retry succeeds.
func TestRunSampledCancelledNotMemoized(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(120_000)
	cfg := pipeline.DefaultConfig()
	sc := sample.DefaultConf()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunSampledCtx(ctx, p, in, cfg, sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSampledCtx(cancelled) err = %v, want context.Canceled", err)
	}
	m := c.Metrics()
	if m.Cancels != 1 || m.Misses != 0 || m.Sampled != 0 {
		t.Fatalf("after cancel: %+v, want 1 cancel and nothing memoized", m)
	}

	r, err := c.RunSampled(p, in, cfg, sc)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	if r.TotalInsts == 0 {
		t.Fatal("retry after cancel produced an empty result")
	}
	if m := c.Metrics(); m.Misses != 1 || m.Sampled != 1 {
		t.Fatalf("after retry: %+v, want 1 miss / 1 sampled", m)
	}
}

// TestRunSampledNilCache: a nil *Cache degrades to a plain sampled run.
func TestRunSampledNilCache(t *testing.T) {
	var c *Cache
	p := testProg(t)
	in := testInput(120_000)
	r, err := c.RunSampled(p, in, pipeline.DefaultConfig(), sample.DefaultConf())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalInsts == 0 {
		t.Fatal("nil-cache sampled run produced an empty result")
	}
}
