package simcache

import (
	"context"
	"crypto/sha256"
	"os"
	"path/filepath"
	"time"

	"dmp/internal/isa"
	"dmp/internal/pipeline"
	"dmp/internal/sample"
)

// sampledKeySchema versions the sampled-entry key derivation. It folds in
// sample.Schema() — the fingerprint of the Result wire shape — so extending
// Result invalidates stale sampled entries the same way StatsSchema guards
// full-fidelity ones.
var sampledKeySchema = "dmp-simcache-sampled-v1\x00" + sample.Schema() + "\x00"

// sresult is one memoized sampled simulation (the sampled twin of result).
type sresult struct {
	ready chan struct{}
	res   sample.Result
	err   error
}

// KeyOfSampled derives the cache key for one sampled simulation: the
// full-fidelity key of the underlying (program, input, config) triple,
// extended with the sampling configuration's canonical form. Two runs with
// equal canonical confs produce identical Results (interval placement is a
// pure function of instruction count and conf), which is what makes sampled
// runs memoizable at all.
func (c *Cache) KeyOfSampled(prog *isa.Program, input []int64, cfg pipeline.Config, sc sample.SampleConf) Key {
	base := c.KeyOf(prog, input, cfg)
	h := sha256.New()
	h.Write([]byte(sampledKeySchema))
	h.Write(base[:])
	h.Write(sc.AppendCanonical(nil))
	var k Key
	h.Sum(k[:0])
	return k
}

// RunSampled is RunSampledCtx without cancellation.
func (c *Cache) RunSampled(prog *isa.Program, input []int64, cfg pipeline.Config, sc sample.SampleConf) (sample.Result, error) {
	return c.RunSampledCtx(context.Background(), prog, input, cfg, sc)
}

// RunSampledCtx returns the memoized sample.Result for the sampled
// simulation, executing it at most once per process per distinct
// (program, input, config, sampling conf) tuple. Sampled entries live in
// their own map and on-disk namespace — a sampled estimate and a
// full-fidelity Stats are different animals and must never answer for each
// other. The cancellation contract matches RunCtx: aborted runs are evicted
// before their waiters wake and are never memoized. On a nil cache it
// degenerates to sample.Run. Traced configs bypass memoization for the same
// reason they do on the full-fidelity path.
func (c *Cache) RunSampledCtx(ctx context.Context, prog *isa.Program, input []int64, cfg pipeline.Config, sc sample.SampleConf) (sample.Result, error) {
	if c == nil {
		return sample.Run(ctx, prog, input, cfg, sc)
	}
	if cfg.Tracer != nil {
		c.metrics.bypasses.Add(1)
		start := time.Now()
		r, err := sample.Run(ctx, prog, input, cfg, sc)
		c.metrics.simWallNS.Add(int64(time.Since(start)))
		if err == nil {
			c.metrics.sampled.Add(1)
		}
		return r, err
	}
	key := c.KeyOfSampled(prog, input, cfg, sc)

	for {
		c.mu.Lock()
		if c.smem == nil {
			c.smem = map[Key]*sresult{}
		}
		if r, ok := c.smem[key]; ok {
			c.mu.Unlock()
			select {
			case <-r.ready:
				c.metrics.hits.Add(1)
			default:
				c.metrics.dedups.Add(1)
				select {
				case <-r.ready:
				case <-ctx.Done():
					return sample.Result{}, ctx.Err()
				}
			}
			if r.err != nil && isCtxErr(r.err) {
				if err := ctx.Err(); err != nil {
					return sample.Result{}, err
				}
				continue
			}
			return r.res, r.err
		}
		r := &sresult{ready: make(chan struct{})}
		c.smem[key] = r
		c.mu.Unlock()
		return c.computeSampled(ctx, key, r, prog, input, cfg, sc)
	}
}

// computeSampled executes (or disk-loads) a sampled simulation for a freshly
// inserted in-flight entry.
func (c *Cache) computeSampled(ctx context.Context, key Key, r *sresult, prog *isa.Program, input []int64, cfg pipeline.Config, sc sample.SampleConf) (sample.Result, error) {
	defer close(r.ready)

	if res, ok := c.loadDiskSampled(key); ok {
		c.metrics.diskHits.Add(1)
		r.res = res
		return res, nil
	}

	start := time.Now()
	r.res, r.err = sample.Run(ctx, prog, input, cfg, sc)
	c.metrics.simWallNS.Add(int64(time.Since(start)))
	if r.err != nil && isCtxErr(r.err) {
		c.metrics.cancels.Add(1)
		c.mu.Lock()
		delete(c.smem, key)
		c.mu.Unlock()
		return r.res, r.err
	}
	c.metrics.misses.Add(1)
	if r.err == nil {
		c.metrics.sampled.Add(1)
		c.storeDiskSampled(key, r.res)
	}
	return r.res, r.err
}

// diskPathSampled namespaces sampled entries by the Result schema, parallel
// to the full-fidelity "s-" generation directories.
func (c *Cache) diskPathSampled(key Key) string {
	return filepath.Join(c.dir, "sm-"+sample.Schema(), key.String()+".json")
}

func (c *Cache) loadDiskSampled(key Key) (sample.Result, bool) {
	if c.dir == "" {
		return sample.Result{}, false
	}
	b, err := os.ReadFile(c.diskPathSampled(key))
	if err != nil {
		return sample.Result{}, false
	}
	res, err := sample.UnmarshalResult(b)
	if err != nil {
		return sample.Result{}, false
	}
	return res, true
}

func (c *Cache) storeDiskSampled(key Key, res sample.Result) {
	if c.dir == "" {
		return
	}
	b, err := sample.MarshalResult(res)
	if err != nil {
		return
	}
	dir := filepath.Dir(c.diskPathSampled(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.diskPathSampled(key)); err != nil {
		os.Remove(name)
	}
}
