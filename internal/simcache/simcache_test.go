package simcache

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dmp/internal/codegen"
	"dmp/internal/isa"
	"dmp/internal/pipeline"
)

const testSrc = `
var acc = 0;
func main() {
	while (inavail()) {
		var v = in();
		if (v & 1) { acc = acc + v; } else { acc = acc - 1; }
	}
	out(acc);
}
`

func testProg(t *testing.T) *isa.Program {
	t.Helper()
	p, err := codegen.CompileSource(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testInput(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i*2654435761) % 1024
	}
	return in
}

func TestKeyStability(t *testing.T) {
	c := New("")
	p1 := testProg(t)
	p2 := testProg(t) // independent compile of the same source
	in := testInput(100)
	cfg := pipeline.DefaultConfig()
	k1 := c.KeyOf(p1, in, cfg)
	k2 := c.KeyOf(p2, in, cfg)
	if k1 != k2 {
		t.Error("independent compiles of the same source produced different keys")
	}

	annots := map[int]*isa.DivergeInfo{}
	for pc, inst := range p1.Code {
		if inst.IsCondBranch() {
			annots[pc] = &isa.DivergeInfo{CFMs: []isa.CFM{{Kind: isa.CFMAddr, Addr: pc + 1, MergeProb: 0.5}}}
			break
		}
	}
	if len(annots) == 0 {
		t.Fatal("test program has no conditional branch")
	}
	if k := c.KeyOf(p1.WithAnnots(annots), in, cfg); k == k1 {
		t.Error("annotation sidecar did not change the key")
	}
	in2 := append(append([]int64(nil), in...), 7)
	if k := c.KeyOf(p1, in2, cfg); k == k1 {
		t.Error("input tape did not change the key")
	}
	cfg2 := cfg
	cfg2.DMP = true
	if k := c.KeyOf(p1, in, cfg2); k == k1 {
		t.Error("config did not change the key")
	}
}

func TestRunMemoizes(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(500)
	cfg := pipeline.DefaultConfig()

	a, err := c.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("memoized result differs from first run")
	}
	m := c.Metrics()
	if m.Misses != 1 || m.Hits != 1 {
		t.Errorf("metrics = %+v, want 1 miss and 1 hit", m)
	}
	if m.SimCycles != a.Cycles {
		t.Errorf("SimCycles = %d, want %d", m.SimCycles, a.Cycles)
	}
	if m.SimWall <= 0 {
		t.Error("SimWall not recorded")
	}
	if m.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", m.HitRate())
	}
}

func TestRunDeduplicatesConcurrent(t *testing.T) {
	c := New("")
	p := testProg(t)
	in := testInput(2000)
	cfg := pipeline.DefaultConfig()

	const workers = 8
	var wg sync.WaitGroup
	results := make([]pipeline.Stats, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Run(p, in, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("worker %d saw a different result", i)
		}
	}
	m := c.Metrics()
	if m.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 execution", m.Misses)
	}
	if m.Hits+m.Dedups != workers-1 {
		t.Errorf("hits+dedups = %d, want %d", m.Hits+m.Dedups, workers-1)
	}
}

func TestDiskLayer(t *testing.T) {
	dir := t.TempDir()
	p := testProg(t)
	in := testInput(500)
	cfg := pipeline.DefaultConfig()

	warm := New(dir)
	a, err := warm.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "s-*", "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries = %v (err %v), want 1", entries, err)
	}

	cold := New(dir)
	b, err := cold.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("disk-cached result differs from simulated result")
	}
	m := cold.Metrics()
	if m.DiskHits != 1 || m.Misses != 0 {
		t.Errorf("metrics = %+v, want pure disk hit", m)
	}

	// A corrupt entry must read as a miss, not an error.
	if err := os.WriteFile(entries[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := New(dir)
	cres, err := rec.Run(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rm := rec.Metrics(); rm.Misses != 1 || rm.DiskHits != 0 {
		t.Errorf("corrupt entry metrics = %+v, want re-simulation", rm)
	}
	if !reflect.DeepEqual(cres, a) {
		t.Error("re-simulated result differs")
	}
}

func TestNilCacheRuns(t *testing.T) {
	var c *Cache
	p := testProg(t)
	st, err := c.Run(p, testInput(100), pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired == 0 {
		t.Error("nil cache run retired nothing")
	}
	if got := c.Metrics(); got != (Snapshot{}) {
		t.Errorf("nil cache metrics = %+v", got)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	s := Snapshot{Hits: 6, Dedups: 1, DiskHits: 1, Misses: 2, SimWall: 2e9, SimCycles: 100e6}
	if s.Requests() != 10 {
		t.Errorf("Requests = %d", s.Requests())
	}
	if got := s.HitRate(); got != 0.8 {
		t.Errorf("HitRate = %v", got)
	}
	if got := s.CyclesPerSec(); got != 50e6 {
		t.Errorf("CyclesPerSec = %v", got)
	}
	d := s.Sub(Snapshot{Hits: 3, Misses: 1, SimWall: 1e9, SimCycles: 40e6})
	if d.Hits != 3 || d.Misses != 1 || d.SimWall != 1e9 || d.SimCycles != 60e6 {
		t.Errorf("Sub = %+v", d)
	}
	if (Snapshot{}).HitRate() != 0 || (Snapshot{}).CyclesPerSec() != 0 {
		t.Error("zero snapshot helpers must return 0")
	}
}
