// Package trace is the cycle-level observability layer for the pipeline
// model: a low-overhead structured event stream (fetch breaks, flushes,
// dpred-session lifecycle, loop-predication outcomes) plus a per-diverge-
// branch session audit built from those events.
//
// The simulator emits events through the pipeline.Config.Tracer hook, which
// is nil-checked at every call site so the default (untraced) path costs
// nothing. Events carry the cycle, the sequence number of the triggering
// entry, the instruction PC and the (diverge or flushing) branch address, so
// a drifting aggregate number can be tracked back to the individual dpred
// sessions that produced it.
//
// The JSON wire format is one object per line:
//
//	{"kind":"cfm-merge","cycle":812,"seq":394,"pc":17,"branch":9,
//	 "saved":true,"overhead":41}
//
// with "loop", "saved", "overhead" and "why" omitted when zero. The same
// schema is consumed by cmd/dmptrace and by Reader in this package; an
// AuditBuilder fed from a decoded stream reproduces exactly the audit table
// the simulator folds into its Stats.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Kind enumerates the event types.
type Kind uint8

const (
	// KindFetchBreak marks a front-end fetch break (Why: "line" for an
	// I-cache line boundary, "icache-miss" for a miss stall, "taken" for a
	// taken-branch redirect).
	KindFetchBreak Kind = iota
	// KindFlush is a pipeline flush; Branch is the flushing branch PC.
	KindFlush
	// KindDpredEnter opens a dpred session at a diverge branch (Loop set
	// for loop sessions).
	KindDpredEnter
	// KindDpredMerge ends a forward session at a CFM point reached on both
	// paths; PC is the merge point when it is an address CFM.
	KindDpredMerge
	// KindDpredFallback ends a forward session by branch resolution before
	// the paths merged (the dual-path fallback).
	KindDpredFallback
	// KindDpredFlushCancel ends a session cancelled by a pipeline flush
	// (an inner misprediction or an older branch's flush).
	KindDpredFlushCancel
	// KindLoopEarlyExit ends a loop session whose predictor left the loop
	// while the trace kept iterating (flush at resolve).
	KindLoopEarlyExit
	// KindLoopLateExit ends a loop session whose extra predicated
	// iterations rejoined the trace at the loop exit (flush avoided).
	KindLoopLateExit
	// KindLoopNoExit ends a loop session whose extra iterations never
	// rejoined; the pending conditional flush fired.
	KindLoopNoExit
	// KindLoopEnd ends a loop session without a flush event of its own
	// (Why: "exit-predicted", "preds-exhausted" or "resolved").
	KindLoopEnd
	// KindDpredThrottled marks a dpred entry suppressed by the usefulness
	// feedback table.
	KindDpredThrottled

	numKinds
)

var kindNames = [numKinds]string{
	KindFetchBreak:       "fetch-break",
	KindFlush:            "flush",
	KindDpredEnter:       "dpred-enter",
	KindDpredMerge:       "cfm-merge",
	KindDpredFallback:    "dual-path-fallback",
	KindDpredFlushCancel: "flush-cancel",
	KindLoopEarlyExit:    "loop-early-exit",
	KindLoopLateExit:     "loop-late-exit",
	KindLoopNoExit:       "loop-no-exit",
	KindLoopEnd:          "loop-end",
	KindDpredThrottled:   "dpred-throttled",
}

// String returns the wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString maps a wire name back to its Kind.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// EndsSession reports whether the kind closes a dpred session.
func (k Kind) EndsSession() bool {
	switch k {
	case KindDpredMerge, KindDpredFallback, KindDpredFlushCancel,
		KindLoopEarlyExit, KindLoopLateExit, KindLoopNoExit, KindLoopEnd:
		return true
	}
	return false
}

// Kinds lists every event kind in wire order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one structured pipeline event.
type Event struct {
	Kind Kind
	// Cycle is the simulation cycle the event occurred on.
	Cycle int64
	// Seq is the sequence number of the triggering entry (the diverge
	// branch for session events), 0 when not applicable.
	Seq int64
	// PC is the instruction address the event is attached to.
	PC int
	// Branch is the diverge/flushing branch address, -1 when none.
	Branch int
	// Loop marks loop-session events.
	Loop bool
	// Saved marks a session end that avoided a pipeline flush.
	Saved bool
	// Overhead is the session's cycle span on session-end events.
	Overhead int64
	// Why refines the kind ("line", "icache-miss", "taken",
	// "exit-predicted", "preds-exhausted", "resolved").
	Why string
}

// appendJSON renders the event as a single JSON object without reflection or
// intermediate allocation beyond growing dst.
func (e Event) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","cycle":`...)
	dst = strconv.AppendInt(dst, e.Cycle, 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendInt(dst, e.Seq, 10)
	dst = append(dst, `,"pc":`...)
	dst = strconv.AppendInt(dst, int64(e.PC), 10)
	dst = append(dst, `,"branch":`...)
	dst = strconv.AppendInt(dst, int64(e.Branch), 10)
	if e.Loop {
		dst = append(dst, `,"loop":true`...)
	}
	if e.Saved {
		dst = append(dst, `,"saved":true`...)
	}
	if e.Overhead != 0 {
		dst = append(dst, `,"overhead":`...)
		dst = strconv.AppendInt(dst, e.Overhead, 10)
	}
	if e.Why != "" {
		dst = append(dst, `,"why":"`...)
		dst = append(dst, e.Why...) // wire whys are plain identifiers
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

// MarshalJSON implements json.Marshaler with the wire schema above.
func (e Event) MarshalJSON() ([]byte, error) { return e.appendJSON(nil), nil }

// wireEvent mirrors the JSON schema for decoding.
type wireEvent struct {
	Kind     string `json:"kind"`
	Cycle    int64  `json:"cycle"`
	Seq      int64  `json:"seq"`
	PC       int    `json:"pc"`
	Branch   int    `json:"branch"`
	Loop     bool   `json:"loop"`
	Saved    bool   `json:"saved"`
	Overhead int64  `json:"overhead"`
	Why      string `json:"why"`
}

// UnmarshalJSON implements json.Unmarshaler for the wire schema.
func (e *Event) UnmarshalJSON(b []byte) error {
	var w wireEvent
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	k, ok := KindFromString(w.Kind)
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", w.Kind)
	}
	*e = Event{Kind: k, Cycle: w.Cycle, Seq: w.Seq, PC: w.PC, Branch: w.Branch,
		Loop: w.Loop, Saved: w.Saved, Overhead: w.Overhead, Why: w.Why}
	return nil
}

// Tracer receives pipeline events. Implementations must be safe for
// concurrent use: the harness shares one tracer across parallel simulations.
type Tracer interface {
	Event(Event)
}

// Collector accumulates events in memory (tests and summarizers).
type Collector struct {
	mu     sync.Mutex
	events []Event
	counts [numKinds]uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Event implements Tracer.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Events returns a copy of the collected events in arrival order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns the number of collected events of the kind.
func (c *Collector) Count(k Kind) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// Len returns the total number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// JSONWriter streams events as JSON lines to an io.Writer.
type JSONWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewJSONWriter wraps w in a buffered JSON-lines event writer. Call Close to
// flush.
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Event implements Tracer.
func (w *JSONWriter) Event(e Event) {
	w.mu.Lock()
	if w.err == nil {
		w.buf = e.appendJSON(w.buf[:0])
		w.buf = append(w.buf, '\n')
		_, w.err = w.bw.Write(w.buf)
	}
	w.mu.Unlock()
}

// Close flushes buffered events and returns the first write error.
func (w *JSONWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); w.err == nil {
		w.err = err
	}
	return w.err
}

// TextWriter streams events as human-readable lines to an io.Writer.
type TextWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewTextWriter wraps w in a buffered text event writer. Call Close to flush.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Event implements Tracer.
func (w *TextWriter) Event(e Event) {
	w.mu.Lock()
	if w.err == nil {
		_, w.err = fmt.Fprintf(w.bw, "cyc %-10d seq %-9d %-18s pc=%d branch=%d", e.Cycle, e.Seq, e.Kind, e.PC, e.Branch)
		if w.err == nil {
			if e.Loop {
				fmt.Fprint(w.bw, " loop")
			}
			if e.Saved {
				fmt.Fprint(w.bw, " saved")
			}
			if e.Overhead != 0 {
				fmt.Fprintf(w.bw, " overhead=%d", e.Overhead)
			}
			if e.Why != "" {
				fmt.Fprintf(w.bw, " why=%s", e.Why)
			}
			_, w.err = fmt.Fprintln(w.bw)
		}
	}
	w.mu.Unlock()
}

// Close flushes buffered events and returns the first write error.
func (w *TextWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); w.err == nil {
		w.err = err
	}
	return w.err
}

// Reader decodes a JSON-lines event stream.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a streaming decoder over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next event; io.EOF ends the stream.
func (r *Reader) Next() (Event, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return Event{}, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ReadAll decodes every event from r.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	rd := NewReader(r)
	for {
		e, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
