package trace

import "slices"

// BranchAudit aggregates dpred-session outcomes and flushes for one branch
// address. The simulator folds a sorted []BranchAudit into its Stats; the
// same table is reproducible offline by feeding a captured event stream
// through an AuditBuilder.
//
// Entered may exceed the sum of the end-outcome counters by one when the
// simulated trace ran out while a session was still open.
type BranchAudit struct {
	// Branch is the branch address the row audits.
	Branch int `json:"branch"`
	// Flushes counts pipeline flushes triggered by this branch.
	Flushes uint64 `json:"flushes,omitempty"`
	// Entered counts dpred sessions opened at this branch; LoopEntered is
	// the loop-session subset.
	Entered     uint64 `json:"entered,omitempty"`
	LoopEntered uint64 `json:"loop_entered,omitempty"`
	// Merged counts forward sessions that reached a CFM on both paths.
	Merged uint64 `json:"merged,omitempty"`
	// Fallback counts forward sessions ended by resolution before merge
	// (the dual-path fallback).
	Fallback uint64 `json:"fallback,omitempty"`
	// FlushCancelled counts sessions cancelled by a pipeline flush.
	FlushCancelled uint64 `json:"flush_cancelled,omitempty"`
	// Loop outcome counters (Section 5.1 cases); LoopEnded covers clean
	// ends (predicted exit, resolution, predicate exhaustion).
	LoopEarlyExit uint64 `json:"loop_early_exit,omitempty"`
	LoopLateExit  uint64 `json:"loop_late_exit,omitempty"`
	LoopNoExit    uint64 `json:"loop_no_exit,omitempty"`
	LoopEnded     uint64 `json:"loop_ended,omitempty"`
	// Throttled counts dpred entries suppressed by usefulness feedback.
	Throttled uint64 `json:"throttled,omitempty"`
	// SavedFlushes counts session ends that avoided a pipeline flush.
	SavedFlushes uint64 `json:"saved_flushes,omitempty"`
	// WastedCycles sums the cycle spans of sessions that ended without
	// avoiding a flush: dpred-mode overhead that bought nothing.
	WastedCycles int64 `json:"wasted_cycles,omitempty"`
}

// Sessions returns the number of session-end outcomes recorded for the row.
func (a BranchAudit) Sessions() uint64 {
	return a.Merged + a.Fallback + a.FlushCancelled +
		a.LoopEarlyExit + a.LoopLateExit + a.LoopNoExit + a.LoopEnded
}

// AuditBuilder accumulates BranchAudit rows from an event stream. The zero
// value is ready to use. It is not safe for concurrent use; the simulator
// owns one per run, and offline consumers feed it from a single decode loop.
type AuditBuilder struct {
	m map[int]*BranchAudit
}

// NewAuditBuilder returns an empty builder.
func NewAuditBuilder() *AuditBuilder { return &AuditBuilder{} }

func (b *AuditBuilder) row(branch int) *BranchAudit {
	if b.m == nil {
		b.m = map[int]*BranchAudit{}
	}
	a := b.m[branch]
	if a == nil {
		a = &BranchAudit{Branch: branch}
		b.m[branch] = a
	}
	return a
}

// Add accounts one event. Kinds that carry no audit information
// (fetch breaks) are ignored.
func (b *AuditBuilder) Add(e Event) {
	switch e.Kind {
	case KindFlush:
		b.row(e.Branch).Flushes++
		return
	case KindDpredEnter:
		a := b.row(e.Branch)
		a.Entered++
		if e.Loop {
			a.LoopEntered++
		}
		return
	case KindDpredThrottled:
		b.row(e.Branch).Throttled++
		return
	}
	if !e.Kind.EndsSession() {
		return
	}
	a := b.row(e.Branch)
	switch e.Kind {
	case KindDpredMerge:
		a.Merged++
	case KindDpredFallback:
		a.Fallback++
	case KindDpredFlushCancel:
		a.FlushCancelled++
	case KindLoopEarlyExit:
		a.LoopEarlyExit++
	case KindLoopLateExit:
		a.LoopLateExit++
	case KindLoopNoExit:
		a.LoopNoExit++
	case KindLoopEnd:
		a.LoopEnded++
	}
	if e.Saved {
		a.SavedFlushes++
	} else {
		a.WastedCycles += e.Overhead
	}
}

// Build returns the audit table sorted by branch address.
func (b *AuditBuilder) Build() []BranchAudit {
	if len(b.m) == 0 {
		return nil
	}
	out := make([]BranchAudit, 0, len(b.m))
	for _, a := range b.m {
		out = append(out, *a)
	}
	slices.SortFunc(out, func(a, b BranchAudit) int { return a.Branch - b.Branch })
	return out
}

// AuditTotals sums an audit table; the harness aggregates these across every
// DMP simulation of a session for the -metrics-json report.
type AuditTotals struct {
	// Branches counts distinct audited branch addresses.
	Branches       int    `json:"branches"`
	Flushes        uint64 `json:"flushes"`
	Entered        uint64 `json:"entered"`
	LoopEntered    uint64 `json:"loop_entered"`
	Merged         uint64 `json:"merged"`
	Fallback       uint64 `json:"fallback"`
	FlushCancelled uint64 `json:"flush_cancelled"`
	LoopEarlyExit  uint64 `json:"loop_early_exit"`
	LoopLateExit   uint64 `json:"loop_late_exit"`
	LoopNoExit     uint64 `json:"loop_no_exit"`
	LoopEnded      uint64 `json:"loop_ended"`
	Throttled      uint64 `json:"throttled"`
	SavedFlushes   uint64 `json:"saved_flushes"`
	WastedCycles   int64  `json:"wasted_cycles"`
}

// Add folds an audit table into the totals.
func (t *AuditTotals) Add(audits []BranchAudit) {
	t.Branches += len(audits)
	for _, a := range audits {
		t.Flushes += a.Flushes
		t.Entered += a.Entered
		t.LoopEntered += a.LoopEntered
		t.Merged += a.Merged
		t.Fallback += a.Fallback
		t.FlushCancelled += a.FlushCancelled
		t.LoopEarlyExit += a.LoopEarlyExit
		t.LoopLateExit += a.LoopLateExit
		t.LoopNoExit += a.LoopNoExit
		t.LoopEnded += a.LoopEnded
		t.Throttled += a.Throttled
		t.SavedFlushes += a.SavedFlushes
		t.WastedCycles += a.WastedCycles
	}
}

// Merge folds another totals record into t (field-wise sum).
func (t *AuditTotals) Merge(o AuditTotals) {
	t.Branches += o.Branches
	t.Flushes += o.Flushes
	t.Entered += o.Entered
	t.LoopEntered += o.LoopEntered
	t.Merged += o.Merged
	t.Fallback += o.Fallback
	t.FlushCancelled += o.FlushCancelled
	t.LoopEarlyExit += o.LoopEarlyExit
	t.LoopLateExit += o.LoopLateExit
	t.LoopNoExit += o.LoopNoExit
	t.LoopEnded += o.LoopEnded
	t.Throttled += o.Throttled
	t.SavedFlushes += o.SavedFlushes
	t.WastedCycles += o.WastedCycles
}

// Totals sums one audit table.
func Totals(audits []BranchAudit) AuditTotals {
	var t AuditTotals
	t.Add(audits)
	return t
}
