package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindFetchBreak, Cycle: 1, Seq: 3, PC: 10, Branch: -1, Why: "line"},
		{Kind: KindFlush, Cycle: 7, Seq: 9, PC: 12, Branch: 12},
		{Kind: KindDpredEnter, Cycle: 8, Seq: 10, PC: 12, Branch: 12},
		{Kind: KindDpredEnter, Cycle: 20, Seq: 30, PC: 40, Branch: 40, Loop: true},
		{Kind: KindDpredEnter, Cycle: 65, Seq: 50, PC: 40, Branch: 40, Loop: true},
		{Kind: KindDpredMerge, Cycle: 15, Seq: 10, PC: 17, Branch: 12, Saved: true, Overhead: 7},
		{Kind: KindLoopLateExit, Cycle: 60, Seq: 30, PC: 44, Branch: 40, Loop: true, Saved: true, Overhead: 40},
		{Kind: KindLoopEnd, Cycle: 70, Seq: 50, PC: 40, Branch: 40, Loop: true, Overhead: 5, Why: "exit-predicted"},
		{Kind: KindDpredThrottled, Cycle: 80, Seq: 60, PC: 12, Branch: 12},
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = (%v, %v), want (%v, true)", k.String(), got, ok, k)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Errorf("out-of-range kind string = %q", Kind(200).String())
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	for _, e := range sampleEvents() {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("decode %s: %v", b, err)
		}
		if got != e {
			t.Errorf("round trip %s:\n got %+v\nwant %+v", b, got, e)
		}
	}
}

// The hand-rolled appendJSON must agree with what encoding/json would accept,
// and omit the optional fields when zero.
func TestEventJSONShape(t *testing.T) {
	e := Event{Kind: KindFlush, Cycle: 7, Seq: 9, PC: 12, Branch: 12}
	b, _ := json.Marshal(e)
	s := string(b)
	for _, forbidden := range []string{"loop", "saved", "overhead", "why"} {
		if strings.Contains(s, forbidden) {
			t.Errorf("zero field %q not omitted: %s", forbidden, s)
		}
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("not valid JSON: %s", b)
	}
	if m["kind"] != "flush" || m["cycle"] != float64(7) {
		t.Errorf("unexpected shape: %s", b)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w := NewJSONWriter(&buf)
	for _, e := range events {
		w.Event(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("stream round trip:\n got %+v\nwant %+v", got, events)
	}
}

func TestReaderSkipsBlanksAndReportsLine(t *testing.T) {
	in := "\n{\"kind\":\"flush\",\"cycle\":1,\"seq\":2,\"pc\":3,\"branch\":3}\n\nnot json\n"
	r := NewReader(strings.NewReader(in))
	if e, err := r.Next(); err != nil || e.Kind != KindFlush {
		t.Fatalf("Next = (%+v, %v)", e, err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("bad line error = %v, want line number 4", err)
	}
}

func TestReaderRejectsUnknownKind(t *testing.T) {
	r := NewReader(strings.NewReader(`{"kind":"martian","cycle":1}`))
	if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Errorf("unknown kind error = %v", err)
	}
	if _, err := NewReader(strings.NewReader("")).Next(); err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	for _, e := range sampleEvents() {
		c.Event(e)
	}
	if c.Len() != len(sampleEvents()) {
		t.Errorf("Len = %d, want %d", c.Len(), len(sampleEvents()))
	}
	if c.Count(KindDpredEnter) != 3 || c.Count(KindFlush) != 1 || c.Count(KindDpredFallback) != 0 {
		t.Errorf("counts: enter=%d flush=%d fallback=%d", c.Count(KindDpredEnter), c.Count(KindFlush), c.Count(KindDpredFallback))
	}
	if !reflect.DeepEqual(c.Events(), sampleEvents()) {
		t.Error("Events() lost order or content")
	}
}

func TestEndsSession(t *testing.T) {
	want := map[Kind]bool{
		KindDpredMerge: true, KindDpredFallback: true, KindDpredFlushCancel: true,
		KindLoopEarlyExit: true, KindLoopLateExit: true, KindLoopNoExit: true, KindLoopEnd: true,
	}
	for _, k := range Kinds() {
		if k.EndsSession() != want[k] {
			t.Errorf("%v.EndsSession() = %v", k, k.EndsSession())
		}
	}
}

func TestAuditBuilder(t *testing.T) {
	var b AuditBuilder
	for _, e := range sampleEvents() {
		b.Add(e)
	}
	audits := b.Build()
	if len(audits) != 2 {
		t.Fatalf("audit rows = %d, want 2 (branches 12 and 40)", len(audits))
	}
	// Sorted by branch address.
	if audits[0].Branch != 12 || audits[1].Branch != 40 {
		t.Fatalf("branches = %d, %d", audits[0].Branch, audits[1].Branch)
	}
	want12 := BranchAudit{Branch: 12, Flushes: 1, Entered: 1, Merged: 1, Throttled: 1, SavedFlushes: 1}
	if audits[0] != want12 {
		t.Errorf("branch 12 audit = %+v, want %+v", audits[0], want12)
	}
	want40 := BranchAudit{Branch: 40, Entered: 2, LoopEntered: 2, LoopLateExit: 1, LoopEnded: 1,
		SavedFlushes: 1, WastedCycles: 5}
	if audits[1] != want40 {
		t.Errorf("branch 40 audit = %+v, want %+v", audits[1], want40)
	}
	if s := audits[1].Sessions(); s != 2 {
		t.Errorf("branch 40 sessions = %d, want 2", s)
	}

	totals := Totals(audits)
	if totals.Branches != 2 || totals.Entered != 3 || totals.SavedFlushes != 2 ||
		totals.WastedCycles != 5 || totals.Flushes != 1 {
		t.Errorf("totals = %+v", totals)
	}
}

func TestAuditBuilderEmpty(t *testing.T) {
	var b AuditBuilder
	if b.Build() != nil {
		t.Error("empty builder should build nil")
	}
	// Fetch breaks carry no audit information.
	b.Add(Event{Kind: KindFetchBreak, Branch: -1})
	if b.Build() != nil {
		t.Error("fetch breaks must not create audit rows")
	}
}
