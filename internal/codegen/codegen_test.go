package codegen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dmp/internal/emu"
	"dmp/internal/ir"
)

// runBinary compiles DML source and executes the binary on the emulator.
func runBinary(t *testing.T, src string, input []int64) []int64 {
	t.Helper()
	bin, err := CompileSource(src)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	if err := bin.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m := emu.New(bin, input, 0)
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatalf("emulate: %v", err)
	}
	return m.Output
}

// runIR interprets the same source at the IR level (the semantic reference).
func runIR(t *testing.T, src string, input []int64) []int64 {
	t.Helper()
	p, err := CompileSourceToIR(src)
	if err != nil {
		t.Fatalf("CompileSourceToIR: %v", err)
	}
	it := ir.NewInterpreter(p, input)
	if _, err := it.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return it.Output
}

// diffTest checks binary output == IR interpreter output.
func diffTest(t *testing.T, src string, input []int64) {
	t.Helper()
	want := runIR(t, src, input)
	got := runBinary(t, src, input)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("binary output %v != IR output %v", got, want)
	}
}

func TestEndToEndBasics(t *testing.T) {
	diffTest(t, `func main() { out(2 + 3 * 4); out(-7); out(!5); }`, nil)
	diffTest(t, `func main() { out(100 / 7); out(100 % 7); out(3 << 4); out(-64 >> 3); }`, nil)
	diffTest(t, `func main() { out(5 & 3); out(5 | 3); out(5 ^ 3); }`, nil)
}

func TestEndToEndGlobalsInit(t *testing.T) {
	diffTest(t, `
var a = 11;
var b = -4;
var zero = 0;
func main() { out(a); out(b); out(zero); }`, nil)
}

func TestEndToEndArrays(t *testing.T) {
	diffTest(t, `
var grid[64];
func main() {
	for (var i = 0; i < 64; i = i + 1) { grid[i] = i * 3; }
	var s = 0;
	for (var j = 0; j < 64; j = j + 1) { s = s + grid[j]; }
	out(s);
	grid[10] += 100;
	grid[10] -= 1;
	out(grid[10]);
}`, nil)
}

func TestEndToEndControlFlow(t *testing.T) {
	diffTest(t, `
func main() {
	var n = 0;
	while (inavail()) {
		var v = in();
		if (v > 10 && v % 2 == 0) { n = n + 2; }
		else if (v > 10 || v < -10) { n = n + 1; }
		else { n = n - 1; }
	}
	out(n);
}`, []int64{12, 11, 5, -20, 14, 3, 0, 100})
}

func TestEndToEndCalls(t *testing.T) {
	diffTest(t, `
func max(a, b) { if (a > b) { return a; } return b; }
func clamp(v, lo, hi) { return max(lo, 0 - max(0 - v, 0 - hi)); }
func main() {
	out(clamp(5, 0, 10));
	out(clamp(-5, 0, 10));
	out(clamp(15, 0, 10));
}`, nil)
}

func TestEndToEndRecursion(t *testing.T) {
	diffTest(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func ack(m, n) {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
func main() { out(fib(15)); out(ack(2, 3)); }`, nil)
}

func TestEndToEndShortCircuitEffects(t *testing.T) {
	diffTest(t, `
var calls = 0;
func f(v) { calls = calls + 1; return v; }
func main() {
	if (f(0) && f(1)) { out(111); }
	out(calls);
	var x = f(1) || f(1);
	out(x); out(calls);
}`, nil)
}

func TestEndToEndSevenParams(t *testing.T) {
	diffTest(t, `
func sum7(a, b, c, d, e, f, g) { return a + b + c + d + e + f + g; }
func main() { out(sum7(1, 2, 3, 4, 5, 6, 7)); }`, nil)
}

func TestEndToEndNestedCallsClobber(t *testing.T) {
	// Callee must not clobber the caller's locals (callee-saved discipline).
	diffTest(t, `
func noisy() {
	var a = 1; var b = 2; var c = 3; var d = 4; var e = 5;
	return a + b + c + d + e;
}
func main() {
	var x = 10; var y = 20; var z = 30;
	var r = noisy();
	out(x + y + z + r);
}`, nil)
}

func TestEndToEndInputDriven(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	input := make([]int64, 500)
	for i := range input {
		input[i] = int64(rng.Intn(200) - 100)
	}
	diffTest(t, `
var hist[16];
func bucket(v) {
	if (v < 0) { v = 0 - v; }
	return v % 16;
}
func main() {
	while (inavail()) {
		var v = in();
		hist[bucket(v)] += 1;
	}
	for (var i = 0; i < 16; i = i + 1) { out(hist[i]); }
}`, input)
}

func TestTooDeepExpression(t *testing.T) {
	// Build an expression requiring more than 12 live temps: a fully
	// parenthesised right-leaning chain keeps the left operands alive.
	expr := "1"
	for i := 0; i < 14; i++ {
		expr = "(1 + " + expr + ")"
	}
	// Left operands of + are constants (no temp), so lean the other way:
	expr = "1"
	for i := 0; i < 14; i++ {
		expr = "(" + expr + " + (1 - in()))"
	}
	_, err := CompileSource(`func main() { out(` + expr + `); }`)
	// Either it compiles (constant operands may not consume temps) or it
	// fails with the depth diagnostic; it must not panic or emit bad code.
	if err != nil && !strings.Contains(err.Error(), "temp registers") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTooManyLocals(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("func main() {\n")
	for i := 0; i < 45; i++ {
		sb.WriteString("var v")
		sb.WriteByte(byte('a' + i%26))
		sb.WriteString(string(rune('a' + i/26)))
		sb.WriteString(" = 1;\n")
	}
	sb.WriteString("}\n")
	_, err := CompileSource(sb.String())
	if err == nil || !strings.Contains(err.Error(), "register slots") {
		t.Errorf("err = %v, want too-many-locals diagnostic", err)
	}
}

func TestCompileSourceErrors(t *testing.T) {
	if _, err := CompileSource("not a program"); err == nil {
		t.Error("parse error not propagated")
	}
	if _, err := CompileSource("func main() { x = 1; }"); err == nil {
		t.Error("check error not propagated")
	}
}

func TestEntryIsStart(t *testing.T) {
	bin, err := CompileSource(`func main() { out(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	start := bin.FuncByName("_start")
	if start == nil || bin.Entry != start.Entry {
		t.Errorf("entry = %d, start = %+v", bin.Entry, start)
	}
	if bin.FuncByName("main") == nil {
		t.Error("main symbol missing")
	}
}

func TestBranchLayoutFallthrough(t *testing.T) {
	// The common if/else should produce exactly one conditional branch plus
	// one jump (then-arm jumps over else), not two jumps.
	bin, err := CompileSource(`
func main() {
	var v = in();
	if (v) { out(1); } else { out(2); }
	out(3);
}`)
	if err != nil {
		t.Fatal(err)
	}
	asm := bin.Disassemble()
	if n := strings.Count(asm, "beqz"); n != 1 {
		t.Errorf("beqz count = %d, want 1\n%s", n, asm)
	}
}

// TestQuickDifferentialRandomPrograms compiles a family of random-but-valid
// programs and diffs emulator output against the IR interpreter.
func TestQuickDifferentialRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Template: random arithmetic over inputs with branches and a loop.
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^"}
		op1 := ops[rng.Intn(len(ops))]
		op2 := ops[rng.Intn(len(ops))]
		k1 := rng.Intn(19) + 1
		k2 := rng.Intn(19) + 1
		src := `
var acc = 0;
func step(v, k) {
	if (v > k) { return v ` + op1 + ` k; }
	return v ` + op2 + ` ` + itoa(k2) + `;
}
func main() {
	while (inavail()) {
		acc = acc + step(in(), ` + itoa(k1) + `);
	}
	out(acc);
}`
		input := make([]int64, 64)
		for i := range input {
			input[i] = int64(rng.Intn(100) - 50)
		}
		want := runIR(t, src, input)
		got := runBinary(t, src, input)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestOptimizedDifferential compiles every differential program both ways
// and checks (a) identical output and (b) the optimized binary retires no
// more instructions than the unoptimized one.
func TestOptimizedDifferential(t *testing.T) {
	srcs := []string{
		`func main() { out(2 * 3 + 4 * 0); out(1 << 10); }`,
		`
var lut[16];
func mix(v) {
	var k = 3 * 4;
	if (v > k) { return v - k + 0; }
	return v * 1;
}
func main() {
	var i = 0;
	while (i < 16) { lut[i] = mix(i * 5); i = i + 1; }
	var s = 0;
	for (var j = 0; j < 16; j = j + 1) { s = s + lut[j]; }
	out(s);
}`,
		`
var c = 0;
func side() { c = c + 1; return c; }
func main() {
	if (1) { out(side()); } else { out(999); }
	if (0 && side() > 0) { out(888); }
	out(c);
}`,
	}
	for i, src := range srcs {
		plain, err := CompileSource(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		opt, err := CompileSourceOptimized(src)
		if err != nil {
			t.Fatalf("case %d optimized: %v", i, err)
		}
		mp := emu.New(plain, nil, 0)
		if _, err := mp.Run(10_000_000); err != nil {
			t.Fatalf("case %d plain run: %v", i, err)
		}
		mo := emu.New(opt, nil, 0)
		if _, err := mo.Run(10_000_000); err != nil {
			t.Fatalf("case %d optimized run: %v", i, err)
		}
		if !reflect.DeepEqual(mp.Output, mo.Output) {
			t.Errorf("case %d: output differs: %v vs %v", i, mp.Output, mo.Output)
		}
		if mo.Retired > mp.Retired {
			t.Errorf("case %d: optimized retired %d > plain %d", i, mo.Retired, mp.Retired)
		}
	}
}

// TestOptimizedBenchmarkEquivalence runs the optimizer over a real corpus
// program and diffs outputs end to end.
func TestOptimizedCorpusProgram(t *testing.T) {
	src := `
var dict[16];
var found = 0;
func main() {
	var i = 0;
	while (i < 16) { dict[i] = i * 61; i = i + 1; }
	while (inavail()) {
		var w = in();
		var j = 0;
		while (j < 16 && dict[j] < w) { j = j + 1; }
		if (j < 16 && dict[j] == w) { found = found + 1; }
	}
	out(found);
}`
	input := make([]int64, 400)
	rng := rand.New(rand.NewSource(17))
	for i := range input {
		input[i] = int64(rng.Intn(1000))
	}
	want := runBinary(t, src, input)
	opt, err := CompileSourceOptimized(src)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(opt, input, 0)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Output, want) {
		t.Errorf("optimized output %v != %v", m.Output, want)
	}
}
