package codegen

import (
	"dmp/internal/ir"
	"dmp/internal/irgen"
	"dmp/internal/isa"
	"dmp/internal/lang"
)

// parseAndCheck runs the front end.
func parseAndCheck(src string) (*lang.File, error) {
	f, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := lang.Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

// genIR lowers a checked file.
func genIR(f *lang.File) (*ir.Program, error) { return irgen.Generate(f) }

// CompileSourceToIR parses, checks and lowers DML source to IR without
// running the back end. Used by tools that want to inspect the IR.
func CompileSourceToIR(src string) (*ir.Program, error) {
	f, err := parseAndCheck(src)
	if err != nil {
		return nil, err
	}
	return genIR(f)
}

// CompileSourceOptimized is CompileSource with the IR optimizer (constant
// folding, copy propagation, branch simplification, unreachable-block
// elimination) run between lowering and code generation. The benchmark
// corpus deliberately does not use it — the recorded evaluation is
// calibrated on unoptimized code — but the toolchain exposes it via
// `dmpcc -O`.
func CompileSourceOptimized(src string) (*isa.Program, error) {
	irProg, err := CompileSourceToIR(src)
	if err != nil {
		return nil, err
	}
	if err := ir.Optimize(irProg); err != nil {
		return nil, err
	}
	return Compile(irProg)
}
