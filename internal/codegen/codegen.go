// Package codegen lowers IR programs to DISA binaries.
//
// Register convention:
//
//	r0          hardwired zero
//	r1..r7      argument registers; r1 doubles as the return value
//	r8..r47     local slots (callee-saved; one register per named local)
//	r48..r59    expression temporaries (caller-clobbered; irgen guarantees
//	            none is live across a call)
//	r60, r61    code-generator scratch
//	r62         stack pointer
//	r63         link register
//
// Functions save their used local registers (and the link register when they
// make calls) in their stack frame. Globals live at fixed word addresses at
// the bottom of data memory and are initialised by the _start stub, which
// then calls main and halts.
package codegen

import (
	"fmt"

	"dmp/internal/ir"
	"dmp/internal/isa"
	"dmp/internal/verify"
)

// Register-convention constants. The argument/temporary ranges are shared
// with the ISA definition (and the static verifier's dataflow pass) via the
// isa package.
const (
	regArg0     = isa.RegArgFirst
	regRet      = isa.RegRet
	regLocal0   = 8
	numLocals   = 40
	regTemp0    = isa.RegTempFirst
	numTemps    = 12
	regScratch  = isa.RegTempLast - 1
	regScratch2 = isa.RegTempLast
)

// Compile lowers an IR program to a linked DISA binary. The IR must verify.
func Compile(p *ir.Program) (*isa.Program, error) {
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	if p.FuncByName("main") == nil {
		return nil, fmt.Errorf("codegen: no main function")
	}
	c := &compiler{prog: p, b: isa.NewBuilder(), globalAddr: map[string]int64{}}
	var next int64
	for _, g := range p.Globals {
		c.globalAddr[g.Name] = next
		next += int64(g.Words)
	}
	c.b.SetGlobals(int(next))

	// _start: initialise global scalars, call main, halt.
	c.b.Func("_start")
	for _, g := range p.Globals {
		if !g.IsArray && g.Init != 0 {
			c.b.MovI(regScratch, g.Init)
			c.b.St(isa.RegZero, c.globalAddr[g.Name], regScratch)
		}
	}
	c.b.Call("main")
	c.b.Halt()

	for _, f := range p.Funcs {
		if err := c.genFunc(f); err != nil {
			return nil, err
		}
	}
	bin, err := c.b.Link()
	if err != nil {
		return nil, fmt.Errorf("codegen: link: %w", err)
	}
	if start := bin.FuncByName("_start"); start != nil {
		bin.Entry = start.Entry
	}
	// Post-compile check: the emitted binary must pass the full static
	// verifier (well-formedness, dataflow, codec, CFG/dominator/loop
	// consistency). A diagnostic here is a code generator bug.
	if err := verify.Check(bin, "codegen"); err != nil {
		return nil, fmt.Errorf("codegen: emitted an invalid binary: %w", err)
	}
	return bin, nil
}

type compiler struct {
	prog       *ir.Program
	b          *isa.Builder
	globalAddr map[string]int64
}

type funcCtx struct {
	f          *ir.Func
	makesCalls bool
	// saved lists the registers the prologue saves, in frame order.
	saved []uint8
}

func (c *compiler) genFunc(f *ir.Func) error {
	if len(f.Locals) > numLocals {
		return fmt.Errorf("codegen: %s: %d locals exceed the %d register slots", f.Name, len(f.Locals), numLocals)
	}
	if f.NumTemps > numTemps {
		return fmt.Errorf("codegen: %s: expression depth %d exceeds the %d temp registers", f.Name, f.NumTemps, numTemps)
	}
	fc := &funcCtx{f: f}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if _, ok := in.(ir.Call); ok {
				fc.makesCalls = true
			}
		}
	}
	for i := range f.Locals {
		fc.saved = append(fc.saved, uint8(regLocal0+i))
	}
	if fc.makesCalls {
		fc.saved = append(fc.saved, isa.RegLR)
	}

	c.b.Func(f.Name)
	// Prologue.
	if len(fc.saved) > 0 {
		c.b.ALUI(isa.OpSub, isa.RegSP, isa.RegSP, int64(len(fc.saved)))
		for i, r := range fc.saved {
			c.b.St(isa.RegSP, int64(i), r)
		}
	}
	for i := range f.Params {
		c.b.Mov(uint8(regLocal0+i), uint8(regArg0+i))
	}

	for bi, blk := range f.Blocks {
		c.b.Label(c.blockLabel(f, blk))
		for _, in := range blk.Instrs {
			if err := c.genInstr(fc, in); err != nil {
				return err
			}
		}
		var next *ir.Block
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1]
		}
		if err := c.genTerm(fc, blk.Term, next); err != nil {
			return err
		}
	}
	return nil
}

// genEpilogue restores the saved registers and returns. Epilogues are
// emitted inline at every return site (no shared tail), so functions with
// multiple source-level returns end in distinct return instructions — the
// control-flow shape the return-CFM mechanism (Section 3.5) targets.
func (c *compiler) genEpilogue(fc *funcCtx) {
	for i, r := range fc.saved {
		c.b.Ld(r, isa.RegSP, int64(i))
	}
	if len(fc.saved) > 0 {
		c.b.ALUI(isa.OpAdd, isa.RegSP, isa.RegSP, int64(len(fc.saved)))
	}
	c.b.Ret()
}

func (c *compiler) blockLabel(f *ir.Func, b *ir.Block) string {
	return fmt.Sprintf("%s.b%d", f.Name, b.ID)
}

// ensureReg returns a register holding operand o. Constants and globals are
// materialised into the given scratch register.
func (c *compiler) ensureReg(o ir.Operand, scratch uint8) (uint8, error) {
	switch o.Kind {
	case ir.Const:
		if o.Val == 0 {
			return isa.RegZero, nil
		}
		c.b.MovI(scratch, o.Val)
		return scratch, nil
	case ir.Temp:
		return uint8(regTemp0 + o.Index), nil
	case ir.Local:
		return uint8(regLocal0 + o.Index), nil
	case ir.GlobalScalar:
		c.b.Ld(scratch, isa.RegZero, c.globalAddr[o.Name])
		return scratch, nil
	}
	return 0, fmt.Errorf("codegen: bad operand %v", o)
}

// destReg returns the register to compute a destination into, and whether
// the result must be stored back to a global afterwards.
func (c *compiler) destReg(d ir.Dest) (reg uint8, storeGlobal bool, err error) {
	switch d.Kind {
	case ir.Temp:
		return uint8(regTemp0 + d.Index), false, nil
	case ir.Local:
		return uint8(regLocal0 + d.Index), false, nil
	case ir.GlobalScalar:
		return regScratch2, true, nil
	}
	return 0, false, fmt.Errorf("codegen: bad destination %v", d)
}

func (c *compiler) storeDest(d ir.Dest, reg uint8) {
	if d.Kind == ir.GlobalScalar {
		c.b.St(isa.RegZero, c.globalAddr[d.Name], reg)
	}
}

func binOpcode(k ir.BinKind) isa.Op {
	switch k {
	case ir.Add:
		return isa.OpAdd
	case ir.Sub:
		return isa.OpSub
	case ir.Mul:
		return isa.OpMul
	case ir.Div:
		return isa.OpDiv
	case ir.Rem:
		return isa.OpRem
	case ir.And:
		return isa.OpAnd
	case ir.Or:
		return isa.OpOr
	case ir.Xor:
		return isa.OpXor
	case ir.Shl:
		return isa.OpShl
	case ir.Shr:
		return isa.OpShr
	case ir.CmpEQ:
		return isa.OpCmpEQ
	case ir.CmpNE:
		return isa.OpCmpNE
	case ir.CmpLT:
		return isa.OpCmpLT
	case ir.CmpLE:
		return isa.OpCmpLE
	case ir.CmpGT:
		return isa.OpCmpGT
	case ir.CmpGE:
		return isa.OpCmpGE
	}
	return isa.OpNop
}

func (c *compiler) genInstr(fc *funcCtx, in ir.Instr) error {
	switch v := in.(type) {
	case ir.BinOp:
		dst, isGlobal, err := c.destReg(v.Dst)
		if err != nil {
			return err
		}
		a, err := c.ensureReg(v.A, regScratch)
		if err != nil {
			return err
		}
		if v.B.Kind == ir.Const {
			c.b.ALUI(binOpcode(v.Op), dst, a, v.B.Val)
		} else {
			b, err := c.ensureReg(v.B, regScratch2)
			if err != nil {
				return err
			}
			c.b.ALU(binOpcode(v.Op), dst, a, b)
		}
		if isGlobal {
			c.storeDest(v.Dst, dst)
		}
		return nil
	case ir.Copy:
		dst, isGlobal, err := c.destReg(v.Dst)
		if err != nil {
			return err
		}
		switch v.Src.Kind {
		case ir.Const:
			c.b.MovI(dst, v.Src.Val)
		case ir.GlobalScalar:
			c.b.Ld(dst, isa.RegZero, c.globalAddr[v.Src.Name])
		default:
			src, err := c.ensureReg(v.Src, regScratch)
			if err != nil {
				return err
			}
			c.b.Mov(dst, src)
		}
		if isGlobal {
			c.storeDest(v.Dst, dst)
		}
		return nil
	case ir.LoadIdx:
		base, ok := c.globalAddr[v.Array]
		if !ok {
			return fmt.Errorf("codegen: unknown array %q", v.Array)
		}
		dst, isGlobal, err := c.destReg(v.Dst)
		if err != nil {
			return err
		}
		idx, err := c.ensureReg(v.Index, regScratch)
		if err != nil {
			return err
		}
		c.b.Ld(dst, idx, base)
		if isGlobal {
			c.storeDest(v.Dst, dst)
		}
		return nil
	case ir.StoreIdx:
		base, ok := c.globalAddr[v.Array]
		if !ok {
			return fmt.Errorf("codegen: unknown array %q", v.Array)
		}
		idx, err := c.ensureReg(v.Index, regScratch)
		if err != nil {
			return err
		}
		val, err := c.ensureReg(v.Val, regScratch2)
		if err != nil {
			return err
		}
		c.b.St(idx, base, val)
		return nil
	case ir.Call:
		for i, a := range v.Args {
			argReg := uint8(regArg0 + i)
			switch a.Kind {
			case ir.Const:
				c.b.MovI(argReg, a.Val)
			case ir.GlobalScalar:
				c.b.Ld(argReg, isa.RegZero, c.globalAddr[a.Name])
			case ir.Local:
				c.b.Mov(argReg, uint8(regLocal0+a.Index))
			default:
				return fmt.Errorf("codegen: %s: call argument %v is a temp (irgen invariant violated)", fc.f.Name, a)
			}
		}
		c.b.Call(v.Fn)
		dst, isGlobal, err := c.destReg(v.Dst)
		if err != nil {
			return err
		}
		if isGlobal {
			c.storeDest(v.Dst, regRet)
		} else if dst != regRet {
			c.b.Mov(dst, regRet)
		}
		return nil
	case ir.Input:
		dst, isGlobal, err := c.destReg(v.Dst)
		if err != nil {
			return err
		}
		c.b.In(dst)
		if isGlobal {
			c.storeDest(v.Dst, dst)
		}
		return nil
	case ir.InputAvail:
		dst, isGlobal, err := c.destReg(v.Dst)
		if err != nil {
			return err
		}
		c.b.InAvail(dst)
		if isGlobal {
			c.storeDest(v.Dst, dst)
		}
		return nil
	case ir.Output:
		r, err := c.ensureReg(v.Val, regScratch)
		if err != nil {
			return err
		}
		c.b.Out(r)
		return nil
	}
	return fmt.Errorf("codegen: unknown instruction %T", in)
}

func (c *compiler) genTerm(fc *funcCtx, t ir.Terminator, next *ir.Block) error {
	switch v := t.(type) {
	case ir.Jmp:
		if v.Target != next {
			c.b.Jmp(c.blockLabel(fc.f, v.Target))
		}
		return nil
	case ir.Br:
		cond, err := c.ensureReg(v.Cond, regScratch)
		if err != nil {
			return err
		}
		switch {
		case v.False == next:
			c.b.Bnez(cond, c.blockLabel(fc.f, v.True))
		case v.True == next:
			c.b.Beqz(cond, c.blockLabel(fc.f, v.False))
		default:
			c.b.Bnez(cond, c.blockLabel(fc.f, v.True))
			c.b.Jmp(c.blockLabel(fc.f, v.False))
		}
		return nil
	case ir.Ret:
		switch v.Val.Kind {
		case ir.Const:
			c.b.MovI(regRet, v.Val.Val)
		case ir.GlobalScalar:
			c.b.Ld(regRet, isa.RegZero, c.globalAddr[v.Val.Name])
		default:
			r, err := c.ensureReg(v.Val, regScratch)
			if err != nil {
				return err
			}
			if r != regRet {
				c.b.Mov(regRet, r)
			}
		}
		c.genEpilogue(fc)
		return nil
	}
	return fmt.Errorf("codegen: unknown terminator %T", t)
}

// CompileSource is a convenience helper: parse, check, lower and compile DML
// source text to a DISA binary.
func CompileSource(src string) (*isa.Program, error) {
	f, err := parseAndCheck(src)
	if err != nil {
		return nil, err
	}
	irProg, err := genIR(f)
	if err != nil {
		return nil, err
	}
	return Compile(irProg)
}
