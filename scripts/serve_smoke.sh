#!/bin/sh
# serve-smoke: end-to-end check of the dmpserve daemon over real HTTP.
# Boots the daemon on a random loopback port, submits preset jobs — one an
# exact duplicate, which must be served from the shared simulation cache —
# polls them to completion, asserts the /metrics counters (all jobs done, no
# panics, non-zero cache hits, latency percentiles reported), then sends
# SIGTERM and verifies the graceful drain: the process exits cleanly and
# logs the drain.
set -eu

BIN=.serve-smoke-bin
LOG=.serve-smoke.log
PID=
cleanup() {
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill -9 "$PID" 2>/dev/null || true
	fi
	rm -f "$BIN" "$LOG"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/dmpserve
"./$BIN" -addr 127.0.0.1:0 -workers 2 >"$LOG" 2>&1 &
PID=$!

ADDR=
i=0
while [ $i -lt 100 ]; do
	ADDR=$(sed -n 's/^dmpserve: listening on //p' "$LOG")
	[ -n "$ADDR" ] && break
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$ADDR" ]; then
	echo "serve-smoke: daemon never listened" >&2
	cat "$LOG" >&2
	exit 1
fi
BASE="http://$ADDR"

curl -fsS "$BASE/healthz" | jq -e '.ok == true and .draining == false' >/dev/null

submit() {
	curl -fsS -X POST "$BASE/jobs" -H 'Content-Type: application/json' -d "$1" | jq -r .id
}
J1=$(submit '{"preset":"deep-hammock","seed":42}')
J2=$(submit '{"preset":"loopy","seed":7,"algo":"cost-edge","priority":2}')
J3=$(submit '{"preset":"deep-hammock","seed":42}') # duplicate spec: must hit the cache

wait_done() {
	i=0
	while [ $i -lt 300 ]; do
		STATE=$(curl -fsS "$BASE/jobs/$1" | jq -r .state)
		case "$STATE" in
		done) return 0 ;;
		failed | canceled)
			echo "serve-smoke: job $1 ended $STATE" >&2
			curl -fsS "$BASE/jobs/$1" >&2
			exit 1
			;;
		esac
		sleep 0.1
		i=$((i + 1))
	done
	echo "serve-smoke: job $1 never finished" >&2
	exit 1
}
wait_done "$J1"
wait_done "$J2"
wait_done "$J3"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | jq -e '.completed == 3 and .failed == 0 and .canceled == 0 and .panics_recovered == 0' >/dev/null
echo "$METRICS" | jq -e '.cache.hits > 0' >/dev/null
echo "$METRICS" | jq -e '.latency_p99_ms > 0' >/dev/null
echo "$METRICS" | jq -e '.jobs_per_sec > 0' >/dev/null

# Graceful shutdown: SIGTERM drains in-flight work and the process exits 0.
# Submit one more job right before the signal so the drain has real work.
J4=$(submit '{"preset":"mixed","seed":99}')
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
	echo "serve-smoke: daemon exited $STATUS after SIGTERM" >&2
	cat "$LOG" >&2
	exit 1
fi
PID=
if ! grep -q "drained" "$LOG"; then
	echo "serve-smoke: no drain log after SIGTERM" >&2
	cat "$LOG" >&2
	exit 1
fi
if ! grep -q "$J4 done" "$LOG"; then
	echo "serve-smoke: in-flight job $J4 was not drained to completion" >&2
	cat "$LOG" >&2
	exit 1
fi
echo "serve-smoke: OK ($(echo "$METRICS" | jq -r '"\(.completed) jobs, \(.cache.hits) cache hits, p99 \(.latency_p99_ms)ms"'))"
