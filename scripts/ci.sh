#!/bin/sh
# Tier-1 CI gate. Mirrors `make ci` for environments without make:
# vet, the required pinned-version lint gate (scripts/lint.sh), build, the
# full test suite under the race detector, the allocation guards, the
# emulator fast-path differential suite, the dmplint corpus sweep, the
# benchmark-regression gate (skippable with SKIP_BENCH_COMPARE=1), the
# generated-corpus smoke (dmpgen -check over 50 programs spanning every
# preset), the profile-free static-estimate smoke (the same corpus with
# -check -static), the sampled-simulation differential smoke (the
# sample-error gate over a corpus subset and a small generated population:
# every full-fidelity IPC must land inside the sampled confidence interval),
# the dmpserve daemon smoke (real HTTP jobs including a duplicate spec that
# must hit the shared simulation cache, a /metrics scrape, and a SIGTERM
# graceful-drain check), the sweep-engine smoke (a small benchmark x config
# grid through cmd/dmpsweep with CSV streaming, run twice so the second
# invocation exercises resume), and short deterministic fuzz smokes over the
# DML parser and the emulator differential harness.
set -eux

go vet ./...
sh scripts/lint.sh
go build ./...
go test -race ./...
go test -run 'TestNilTracerEventNoAlloc|TestSteadyStateAllocs' ./internal/pipeline
go test -run 'TestFastMatchesReference|TestRunMatchesReference|TestRunBlockMatchesReference|TestStepBatchMatchesReference|TestFaultEquivalence|TestStepBatchFaults' ./internal/emu
sh scripts/bench_compare.sh
go run ./cmd/dmplint -corpus
go run ./cmd/dmpgen -preset all -n 50 -seed 1 -check
go run ./cmd/dmpgen -preset all -n 50 -seed 1 -check -static
go run ./cmd/dmpbench -exp sample-error -bench gzip,mcf,twolf -gen-n 12
go run ./cmd/dmpsim -bench vpr -dmp -max 200000 -trace-json .trace-smoke.jsonl >/dev/null
go run ./cmd/dmptrace -require-sessions .trace-smoke.jsonl >/dev/null
rm -f .trace-smoke.jsonl
sh scripts/serve_smoke.sh
rm -f .sweep-smoke.csv
go run ./cmd/dmpsweep -bench gzip,mcf -axis ROBSize=128,512 -axis DMP=false,true -max 200000 -q -out .sweep-smoke.csv >/dev/null
go run ./cmd/dmpsweep -bench gzip,mcf -axis ROBSize=128,512 -axis DMP=false,true -max 200000 -q -out .sweep-smoke.csv >/dev/null
rm -f .sweep-smoke.csv
go test -run '^$' -fuzz=FuzzParse -fuzztime=30s ./internal/lang
go test -run '^$' -fuzz=FuzzEmuDiff -fuzztime=30s ./internal/emu
