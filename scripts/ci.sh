#!/bin/sh
# Tier-1 CI gate. Mirrors `make ci` for environments without make:
# vet, build, the full test suite under the race detector, and a short
# deterministic fuzz smoke over the DML parser.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -fuzz=FuzzParse -fuzztime=30s ./internal/lang
