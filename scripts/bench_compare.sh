#!/bin/sh
# Benchmark-regression gate for the simulator's hot loop.
#
# Runs the root corpus benchmarks (BenchmarkPipelineBaseline/DMP, which
# report sim-insts/s), the pipeline-level BenchmarkDMPRun, the execution
# engine benchmarks (BenchmarkEmuRun, BenchmarkProfileCollect), and the
# SMARTS sampled executor (BenchmarkSampledRun), folds the repeats through
# cmd/benchgate, rewrites BENCH_PR9.json, and fails when throughput drops
# more than BENCH_MAX_REGRESS percent (default 15) against the snapshot
# committed at HEAD, or allocs/op grows past the benchgate default.
#
# benchgate folds repeats best-of, so noise is one-sided (a loaded machine
# can only look slower); more repeats tighten the estimate.
#
# Environment knobs:
#   SKIP_BENCH_COMPARE=1   skip entirely (e.g. heavily-loaded CI machines)
#   BENCH_COUNT=N          benchmark repeats to fold (default 5)
#   BENCH_MAX_REGRESS=P    allowed throughput drop, percent (default 15)
#   BENCH_UPDATE=1         refresh the snapshot without gating
set -eu

if [ "${SKIP_BENCH_COMPARE:-0}" = "1" ]; then
	echo "bench-compare: skipped (SKIP_BENCH_COMPARE=1)"
	exit 0
fi

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

count=${BENCH_COUNT:-5}
go test -run '^$' \
	-bench 'BenchmarkPipelineBaseline|BenchmarkPipelineDMP|BenchmarkDMPRun|BenchmarkEmuRun|BenchmarkProfileCollect|BenchmarkSampledRun|BenchmarkSweepGrid' \
	-benchmem -count "$count" . ./internal/pipeline ./internal/emu ./internal/profile ./internal/sample ./internal/sweep | tee "$tmp/bench.txt"

baseline=""
if git show HEAD:BENCH_PR9.json > "$tmp/baseline.json" 2>/dev/null; then
	baseline="$tmp/baseline.json"
fi

update=""
if [ "${BENCH_UPDATE:-0}" = "1" ]; then
	update="-update"
fi

go run ./cmd/benchgate -in "$tmp/bench.txt" -out BENCH_PR9.json \
	${baseline:+-baseline "$baseline"} -max-regress "${BENCH_MAX_REGRESS:-15}" $update
