#!/bin/sh
# Required lint gate with pinned tool versions.
#
# Unlike the old "use whatever is on PATH, skip otherwise" behaviour, this
# script treats lint findings and version drift as failures:
#
#   - staticcheck is pinned to STATICCHECK_VERSION (module tag below). If a
#     staticcheck binary is present, its reported version must match the pin
#     and its findings fail the gate.
#   - golangci-lint is pinned to GOLANGCI_VERSION with the same rules.
#   - If a tool is absent, we attempt one `go install` of the pinned tag.
#     That needs network; in hermetic/offline environments the install
#     fails, and the tool is skipped with a loud notice instead of failing
#     the build (the container bakes in the Go toolchain only — this repo
#     must not depend on network installs).
#   - LINT_STRICT=1 escalates the offline skip into a hard failure, for
#     environments that guarantee the tools are preinstalled.
#
# go vet always runs from the Makefile/ci.sh before this script; it is the
# unconditional floor the lint tools build on.
set -eu

STATICCHECK_VERSION=${STATICCHECK_VERSION:-2025.1.1}
STATICCHECK_MODULE_TAG=${STATICCHECK_MODULE_TAG:-v0.6.1}
GOLANGCI_VERSION=${GOLANGCI_VERSION:-1.64.8}

fail=0
skipped=0

note() { echo "lint: $*" >&2; }

# try_install tool module@tag: best-effort pinned install; quiet on failure.
try_install() {
	note "$1 not found; attempting pinned install of $2"
	if GOFLAGS= go install "$2" >/dev/null 2>&1; then
		note "$1 installed"
		return 0
	fi
	note "$1 unavailable and pinned install failed (offline?)"
	return 1
}

# --- staticcheck -----------------------------------------------------------
if ! command -v staticcheck >/dev/null 2>&1; then
	try_install staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_MODULE_TAG" || true
fi
if command -v staticcheck >/dev/null 2>&1; then
	got=$(staticcheck -version 2>/dev/null | head -n1)
	case "$got" in
	*"$STATICCHECK_VERSION"*) ;;
	*)
		note "staticcheck version mismatch: have '$got', pinned $STATICCHECK_VERSION"
		fail=1
		;;
	esac
	if [ "$fail" -eq 0 ]; then
		note "running staticcheck $STATICCHECK_VERSION"
		staticcheck ./... || fail=1
	fi
else
	skipped=1
	note "SKIP staticcheck (pinned $STATICCHECK_VERSION): not installed and not installable offline"
fi

# --- golangci-lint ---------------------------------------------------------
if ! command -v golangci-lint >/dev/null 2>&1; then
	try_install golangci-lint "github.com/golangci/golangci-lint/cmd/golangci-lint@v$GOLANGCI_VERSION" || true
fi
if command -v golangci-lint >/dev/null 2>&1; then
	got=$(golangci-lint version 2>/dev/null | head -n1)
	case "$got" in
	*"$GOLANGCI_VERSION"*) ;;
	*)
		note "golangci-lint version mismatch: have '$got', pinned $GOLANGCI_VERSION"
		fail=1
		;;
	esac
	if [ "$fail" -eq 0 ]; then
		note "running golangci-lint $GOLANGCI_VERSION"
		golangci-lint run ./... || fail=1
	fi
else
	skipped=1
	note "SKIP golangci-lint (pinned $GOLANGCI_VERSION): not installed and not installable offline"
fi

if [ "$skipped" -eq 1 ] && [ "${LINT_STRICT:-0}" = "1" ]; then
	note "LINT_STRICT=1: treating skipped lint tools as a failure"
	fail=1
fi

exit "$fail"
