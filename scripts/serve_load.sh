#!/bin/sh
# serve-load: run the dmpserve built-in load test (an in-process daemon on a
# loopback port driven over real HTTP) and print the JSON load report.
#
#   sh scripts/serve_load.sh [jobs] [concurrency]
#
# Defaults drive 200 concurrent jobs from 32 client goroutines, with
# deliberate duplicate specs so a healthy run reports a non-zero cache hit
# rate. Exits non-zero if any job fails or the cache never hit.
set -eu

JOBS=${1:-200}
CONC=${2:-32}
exec go run ./cmd/dmpserve -selftest -selftest-jobs "$JOBS" -selftest-conc "$CONC"
